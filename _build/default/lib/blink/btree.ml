type key = int

type stats = {
  mutable accesses : int;
  mutable right_moves : int;
  mutable splits : int;
  mutable max_restructure_span : int;
}

type 'v t = {
  nodes : (Node.id, 'v Node.t) Hashtbl.t;
  mutable root : Node.id;
  mutable next_id : int;
  cap : int;
  st : stats;
}

let fresh_stats () =
  { accesses = 0; right_moves = 0; splits = 0; max_restructure_span = 0 }

let create ?(capacity = 8) () =
  if capacity < 2 then invalid_arg "Btree.create: capacity must be >= 2";
  let nodes = Hashtbl.create 97 in
  let root =
    Node.make ~id:0 ~level:0 ~low:Bound.Neg_inf ~high:Bound.Pos_inf
      Entries.empty
  in
  Hashtbl.add nodes 0 root;
  { nodes; root = 0; next_id = 1; cap = capacity; st = fresh_stats () }

let capacity t = t.cap
let stats t = t.st

let reset_stats t =
  t.st.accesses <- 0;
  t.st.right_moves <- 0;
  t.st.splits <- 0;
  t.st.max_restructure_span <- 0

let get t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> Fmt.failwith "Btree: dangling node id %d" id

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let root_id t = t.root
let node t id = Hashtbl.find_opt t.nodes id

(* Walk right from [id] until the node whose range contains [k]. *)
let rec chase t id k =
  let n = get t id in
  t.st.accesses <- t.st.accesses + 1;
  match Node.step n k with
  | Node.Chase_right r ->
    t.st.right_moves <- t.st.right_moves + 1;
    chase t r k
  | Node.Here | Node.Descend _ | Node.Chase_left _ | Node.Dead_end -> n

(* Descend to the leaf responsible for [k], optionally recording the node
   visited at each interior level (for bottom-up restructuring). *)
let descend ?path t k =
  let rec go id =
    let n = chase t id k in
    if Node.is_leaf n then n
    else begin
      (match path with Some stack -> stack := n.Node.id :: !stack | None -> ());
      match Node.step n k with
      | Node.Descend child -> go child
      | Node.Here | Node.Chase_right _ | Node.Chase_left _ | Node.Dead_end ->
        assert false
    end
  in
  go t.root

let search t k =
  let leaf = descend t k in
  Node.find_leaf_value leaf k

let mem t k = Option.is_some (search t k)

let grow_root t old_root_id sep sibling_id =
  let old_root = get t old_root_id in
  let entries =
    Entries.of_sorted_list
      [
        (Bound.min_sentinel, Node.Child old_root_id);
        (sep, Node.Child sibling_id);
      ]
  in
  let root =
    Node.make ~id:(fresh_id t) ~level:(old_root.Node.level + 1)
      ~low:Bound.Neg_inf ~high:Bound.Pos_inf entries
  in
  Hashtbl.add t.nodes root.Node.id root;
  t.root <- root.Node.id

(* Complete a split by inserting (sep -> sibling) one level up, splitting
   recursively.  [path] holds the interior ids recorded on the way down,
   innermost first. *)
let rec complete_split t path ~split_node_id ~sep ~sibling_id =
  match path with
  | [] -> grow_root t split_node_id sep sibling_id
  | parent_id :: rest ->
    let parent = chase t parent_id sep in
    Node.add_entry parent sep (Node.Child sibling_id);
    t.st.max_restructure_span <- max t.st.max_restructure_span 1;
    if Node.too_full ~capacity:t.cap parent then begin
      let sib = Node.half_split parent ~sibling_id:(fresh_id t) in
      Hashtbl.add t.nodes sib.Node.id sib;
      t.st.splits <- t.st.splits + 1;
      complete_split t rest ~split_node_id:parent.Node.id
        ~sep:(Node.separator_of_sibling sib)
        ~sibling_id:sib.Node.id
    end

let insert t k v =
  if k = Bound.min_sentinel then invalid_arg "Btree.insert: reserved key";
  let path = ref [] in
  let leaf = descend ~path t k in
  Node.add_entry leaf k (Node.Data v);
  t.st.max_restructure_span <- max t.st.max_restructure_span 1;
  if Node.too_full ~capacity:t.cap leaf then begin
    let sib = Node.half_split leaf ~sibling_id:(fresh_id t) in
    Hashtbl.add t.nodes sib.Node.id sib;
    t.st.splits <- t.st.splits + 1;
    complete_split t !path ~split_node_id:leaf.Node.id
      ~sep:(Node.separator_of_sibling sib)
      ~sibling_id:sib.Node.id
  end

let delete t k =
  let leaf = descend t k in
  if Entries.mem leaf.Node.entries k then begin
    Node.remove_entry leaf k;
    true
  end
  else false

let leftmost t level =
  let rec go id =
    let n = get t id in
    if n.Node.level = level then n
    else
      match Entries.min_binding n.Node.entries with
      | Some (_, Node.Child c) -> go c
      | Some (_, Node.Data _) | None ->
        Fmt.failwith "Btree.leftmost: malformed interior node %d" id
  in
  go t.root

let fold_level t level f acc =
  let rec go n acc =
    let acc = f n acc in
    match n.Node.right with Some r -> go (get t r) acc | None -> acc
  in
  go (leftmost t level) acc

let to_list t =
  fold_level t 0
    (fun n acc ->
      Entries.fold
        (fun k p acc ->
          match p with
          | Node.Data v -> (k, v) :: acc
          | Node.Child _ -> acc)
        n.Node.entries acc)
    []
  |> List.rev

let size t = fold_level t 0 (fun n acc -> acc + Node.size n) 0

let height t = (get t t.root).Node.level + 1
let node_count t = Hashtbl.length t.nodes

let leaf_utilization t =
  let total, used =
    fold_level t 0
      (fun n (total, used) -> (total + t.cap, used + Node.size n))
      (0, 0)
  in
  if total = 0 then 1.0 else float_of_int used /. float_of_int total

let iter f t =
  fold_level t 0
    (fun n () ->
      Entries.iter
        (fun k p -> match p with Node.Data v -> f k v | Node.Child _ -> ())
        n.Node.entries)
    ()

let fold f t acc =
  fold_level t 0
    (fun n acc ->
      Entries.fold
        (fun k p acc ->
          match p with Node.Data v -> f k v acc | Node.Child _ -> acc)
        n.Node.entries acc)
    acc

let min_binding t =
  let rec first n =
    match Entries.min_binding n.Node.entries with
    | Some (k, Node.Data v) -> Some (k, v)
    | Some (_, Node.Child _) | None -> (
      match n.Node.right with Some r -> first (get t r) | None -> None)
  in
  first (leftmost t 0)

let max_binding t =
  (* walk to the rightmost non-empty leaf *)
  fold_level t 0
    (fun n acc ->
      match Entries.max_binding n.Node.entries with
      | Some (k, Node.Data v) -> Some (k, v)
      | Some (_, Node.Child _) | None -> acc)
    None

let successor t k =
  (* start at k's leaf and scan right across possibly-empty leaves *)
  let rec scan n =
    let found =
      Entries.fold
        (fun k' p acc ->
          match (p, acc) with
          | Node.Data v, None when k' > k -> Some (k', v)
          | (Node.Data _ | Node.Child _), acc -> acc)
        n.Node.entries None
    in
    match found with
    | Some _ as r -> r
    | None -> (
      match n.Node.right with Some r -> scan (get t r) | None -> None)
  in
  scan (descend t k)

let predecessor t k =
  (* no left links in the sequential tree: fold keeps the last match *)
  fold
    (fun k' v acc -> if k' < k then Some (k', v) else acc)
    t None

let range t ~lo ~hi =
  let rec collect n acc =
    let acc =
      Entries.fold
        (fun k p acc ->
          match p with
          | Node.Data v when k >= lo && k <= hi -> (k, v) :: acc
          | Node.Data _ | Node.Child _ -> acc)
        n.Node.entries acc
    in
    match n.Node.right with
    | Some r when Bound.compare_key n.Node.high hi <= 0 -> collect (get t r) acc
    | Some _ | None -> acc
  in
  List.rev (collect (descend t lo) [])

let of_sorted ?(capacity = 8) ?(fill = 0.9) bindings =
  if capacity < 2 then invalid_arg "Btree.of_sorted: capacity must be >= 2";
  let t = create ~capacity () in
  let per_node = max 1 (int_of_float (float_of_int capacity *. fill)) in
  (* chunk bindings into leaves *)
  let rec chunks acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | b :: rest ->
      if n = per_node then chunks (List.rev cur :: acc) [ b ] 1 rest
      else chunks acc (b :: cur) (n + 1) rest
  in
  match chunks [] [] 0 bindings with
  | [] -> t
  | first :: _ as leaf_chunks ->
    ignore first;
    (* build one level of nodes over a list of (low_key, id) children;
       low_key = min_sentinel for the leftmost *)
    let mk_level level children =
      let rec group acc cur n = function
        | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
        | c :: rest ->
          if n = per_node then group (List.rev cur :: acc) [ c ] 1 rest
          else group acc (c :: cur) (n + 1) rest
      in
      let groups = group [] [] 0 children in
      let nodes =
        List.map
          (fun grp ->
            let entries = Entries.of_sorted_list grp in
            let id = fresh_id t in
            let low =
              match grp with
              | (k, _) :: _ when k = Bound.min_sentinel -> Bound.Neg_inf
              | (k, _) :: _ -> Bound.Key k
              | [] -> assert false
            in
            let n = Node.make ~id ~level ~low ~high:Bound.Pos_inf entries in
            Hashtbl.add t.nodes id n;
            n)
          groups
      in
      (* fix highs and links *)
      let rec link = function
        | a :: (b :: _ as rest) ->
          a.Node.high <- b.Node.low;
          a.Node.right <- Some b.Node.id;
          b.Node.left <- Some a.Node.id;
          link rest
        | [ _ ] | [] -> ()
      in
      link nodes;
      nodes
    in
    (* leaves *)
    let leaf_children =
      List.map
        (fun chunk -> List.map (fun (k, v) -> (k, Node.Data v)) chunk)
        leaf_chunks
    in
    let leaves =
      List.map
        (fun entries_list ->
          let entries = Entries.of_sorted_list entries_list in
          let id = fresh_id t in
          let low =
            match entries_list with
            | (k, _) :: _ -> Bound.Key k
            | [] -> assert false
          in
          let n = Node.make ~id ~level:0 ~low ~high:Bound.Pos_inf entries in
          Hashtbl.add t.nodes id n;
          n)
        leaf_children
    in
    (match leaves with
    | first :: _ -> first.Node.low <- Bound.Neg_inf
    | [] -> ());
    let rec link = function
      | a :: (b :: _ as rest) ->
        a.Node.high <- b.Node.low;
        a.Node.right <- Some b.Node.id;
        b.Node.left <- Some a.Node.id;
        link rest
      | [ _ ] | [] -> ()
    in
    link leaves;
    (* the bootstrap empty root (id 0) is garbage now *)
    Hashtbl.remove t.nodes 0;
    (* build interior levels until one node remains *)
    let rec up level nodes =
      match nodes with
      | [ only ] -> t.root <- only.Node.id
      | _ ->
        let children =
          List.mapi
            (fun i (n : 'v Node.t) ->
              let sep =
                if i = 0 then Bound.min_sentinel
                else
                  match n.Node.low with
                  | Bound.Key k -> k
                  | Bound.Neg_inf | Bound.Pos_inf -> assert false
              in
              (sep, Node.Child n.Node.id))
            nodes
        in
        up (level + 1) (mk_level level children)
    in
    up 1 leaves;
    t

let compact t = of_sorted ~capacity:t.cap (to_list t)

let check_invariants t =
  let ( let* ) = Result.bind in
  let fail fmt = Fmt.kstr (fun s -> Error s) fmt in
  let check_level level =
    let rec walk n expected_low =
      let* () =
        if Bound.equal n.Node.low expected_low then Ok ()
        else
          fail "node %d: low %a, expected %a" n.Node.id Bound.pp n.Node.low
            Bound.pp expected_low
      in
      let* () =
        if
          Entries.for_all
            (fun k _ -> k = Bound.min_sentinel || Node.in_range n k)
            n.Node.entries
        then Ok ()
        else fail "node %d: entry outside range" n.Node.id
      in
      let* () =
        if Node.is_leaf n then Ok ()
        else
          match (Entries.min_binding n.Node.entries, n.Node.low) with
          | Some (k, _), Bound.Neg_inf when k = Bound.min_sentinel -> Ok ()
          | Some (k, _), Bound.Key low when k = low -> Ok ()
          | Some _, _ -> fail "node %d: first separator <> low" n.Node.id
          | None, _ -> fail "interior node %d empty" n.Node.id
      in
      match n.Node.right with
      | Some r -> walk (get t r) n.Node.high
      | None ->
        if Bound.equal n.Node.high Bound.Pos_inf then Ok ()
        else fail "node %d: rightmost but high <> +inf" n.Node.id
    in
    walk (leftmost t level) Bound.Neg_inf
  in
  let rec check_levels level =
    if level < 0 then Ok ()
    else
      let* () = check_level level in
      check_levels (level - 1)
  in
  let* () = check_levels (get t t.root).Node.level in
  (* Every stored key must be reachable by a fresh search from the root. *)
  let missing =
    List.filter (fun (k, _) -> not (mem t k)) (to_list t)
  in
  match missing with
  | [] -> Ok ()
  | (k, _) :: _ -> fail "key %d stored but not reachable from root" k
