type key = int
type id = int

type 'v payload = Child of id | Data of 'v

type 'v t = {
  id : id;
  level : int;
  mutable low : Bound.t;
  mutable high : Bound.t;
  mutable entries : 'v payload Entries.t;
  mutable right : id option;
  mutable left : id option;
  mutable parent : id option;
  mutable version : int;
}

let make ~id ~level ~low ~high ?right ?left ?parent ?(version = 0) entries =
  { id; level; low; high; entries; right; left; parent; version }

let is_leaf n = n.level = 0
let in_range n k = Bound.key_in_range ~low:n.low ~high:n.high k

type step =
  | Here
  | Descend of id
  | Chase_right of id
  | Chase_left of id
  | Dead_end

let step n k =
  if Bound.compare_key n.high k <= 0 then
    match n.right with Some r -> Chase_right r | None -> Dead_end
  else if Bound.compare_key n.low k > 0 then
    match n.left with Some l -> Chase_left l | None -> Dead_end
  else if is_leaf n then Here
  else
    match Entries.floor n.entries k with
    | Some (_, Child c) -> Descend c
    | Some (_, Data _) ->
      invalid_arg "Node.step: Data payload in interior node"
    | None ->
      (* An interior node in whose range k falls always has a floor entry:
         its first separator equals its low bound (or the sentinel). *)
      invalid_arg "Node.step: interior node with no floor entry"

let find_leaf_value n k =
  if not (is_leaf n) then invalid_arg "Node.find_leaf_value: interior node";
  match Entries.find n.entries k with
  | Some (Data v) -> Some v
  | Some (Child _) -> invalid_arg "Node.find_leaf_value: Child in leaf"
  | None -> None

let add_entry n k p = n.entries <- Entries.add n.entries k p
let remove_entry n k = n.entries <- Entries.remove n.entries k
let size n = Entries.length n.entries

let too_full ~capacity n = size n > capacity && size n >= 2

let half_split n ~sibling_id =
  let left_entries, sep, right_entries = Entries.split_half n.entries in
  let sibling =
    {
      id = sibling_id;
      level = n.level;
      low = Bound.Key sep;
      high = n.high;
      entries = right_entries;
      right = n.right;
      left = Some n.id;
      parent = n.parent;
      version = n.version + 1;
    }
  in
  n.entries <- left_entries;
  n.high <- Bound.Key sep;
  n.right <- Some sibling_id;
  n.version <- n.version + 1;
  sibling

let separator_of_sibling sibling =
  match sibling.low with
  | Bound.Key k -> k
  | Bound.Neg_inf | Bound.Pos_inf ->
    invalid_arg "Node.separator_of_sibling: sibling with infinite low bound"

let clone n =
  {
    id = n.id;
    level = n.level;
    low = n.low;
    high = n.high;
    entries = n.entries;
    right = n.right;
    left = n.left;
    parent = n.parent;
    version = n.version;
  }

let payload_equal eq a b =
  match (a, b) with
  | Child x, Child y -> x = y
  | Data x, Data y -> eq x y
  | Child _, Data _ | Data _, Child _ -> false

let content_equal eq a b =
  a.level = b.level
  && Bound.equal a.low b.low
  && Bound.equal a.high b.high
  && a.right = b.right
  && a.version = b.version
  && Entries.equal (payload_equal eq) a.entries b.entries

let pp_payload pv ppf = function
  | Child id -> Fmt.pf ppf "->%d" id
  | Data v -> pv ppf v

let pp pv ppf n =
  Fmt.pf ppf "@[<h>node %d (lvl %d, v%d) [%a,%a) right=%a %a@]" n.id n.level
    n.version Bound.pp n.low Bound.pp n.high
    (Fmt.option ~none:(Fmt.any "none") Fmt.int)
    n.right
    (Entries.pp (pp_payload pv))
    n.entries
