type key = int

type stats = {
  mutable accesses : int;
  mutable splits : int;
  mutable max_restructure_span : int;
  mutable restructure_spans : int;
}

(* Nodes reuse the B-link node record but never set sibling links. *)
type 'v t = {
  nodes : (Node.id, 'v Node.t) Hashtbl.t;
  mutable root : Node.id;
  mutable next_id : int;
  cap : int;
  st : stats;
}

let create ?(capacity = 8) () =
  if capacity < 2 then invalid_arg "Bptree.create: capacity must be >= 2";
  let nodes = Hashtbl.create 97 in
  Hashtbl.add nodes 0
    (Node.make ~id:0 ~level:0 ~low:Bound.Neg_inf ~high:Bound.Pos_inf
       Entries.empty);
  {
    nodes;
    root = 0;
    next_id = 1;
    cap = capacity;
    st =
      { accesses = 0; splits = 0; max_restructure_span = 0;
        restructure_spans = 0 };
  }

let stats t = t.st

let reset_stats t =
  t.st.accesses <- 0;
  t.st.splits <- 0;
  t.st.max_restructure_span <- 0;
  t.st.restructure_spans <- 0

let get t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> Fmt.failwith "Bptree: dangling node id %d" id

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let descend t k =
  let rec go id path =
    let n = get t id in
    t.st.accesses <- t.st.accesses + 1;
    if Node.is_leaf n then (n, path)
    else
      match Entries.floor n.Node.entries k with
      | Some (_, Node.Child c) -> go c (n.Node.id :: path)
      | Some (_, Node.Data _) | None ->
        Fmt.failwith "Bptree: malformed interior node %d" id
  in
  go t.root []

let search t k =
  let leaf, _ = descend t k in
  Node.find_leaf_value leaf k

let mem t k = Option.is_some (search t k)

let grow_root t old_root_id sep sibling_id =
  let old_root = get t old_root_id in
  let entries =
    Entries.of_sorted_list
      [
        (Bound.min_sentinel, Node.Child old_root_id);
        (sep, Node.Child sibling_id);
      ]
  in
  let root =
    Node.make ~id:(fresh_id t) ~level:(old_root.Node.level + 1)
      ~low:Bound.Neg_inf ~high:Bound.Pos_inf entries
  in
  Hashtbl.add t.nodes root.Node.id root;
  t.root <- root.Node.id

let insert t k v =
  if k = Bound.min_sentinel then invalid_arg "Bptree.insert: reserved key";
  let leaf, path = descend t k in
  Node.add_entry leaf k (Node.Data v);
  (* Split cascade: all of it forms ONE atomic restructure (the baseline
     cost E1 compares against the B-link half-split). *)
  let span = ref 1 in
  let rec cascade n path =
    if Node.too_full ~capacity:t.cap n then begin
      let sib = Node.half_split n ~sibling_id:(fresh_id t) in
      (* A classic B+ tree has no sibling links: erase them. *)
      sib.Node.left <- None;
      n.Node.right <- None;
      Hashtbl.add t.nodes sib.Node.id sib;
      t.st.splits <- t.st.splits + 1;
      span := !span + 2;
      let sep = Node.separator_of_sibling sib in
      match path with
      | [] -> grow_root t n.Node.id sep sib.Node.id
      | parent_id :: rest ->
        let parent = get t parent_id in
        Node.add_entry parent sep (Node.Child sib.Node.id);
        span := !span + 1;
        cascade parent rest
    end
  in
  cascade leaf path;
  if !span > 1 then t.st.restructure_spans <- t.st.restructure_spans + !span;
  t.st.max_restructure_span <- max t.st.max_restructure_span !span

let rec fold_tree t id f acc =
  let n = get t id in
  if Node.is_leaf n then f n acc
  else
    Entries.fold
      (fun _ p acc ->
        match p with
        | Node.Child c -> fold_tree t c f acc
        | Node.Data _ -> acc)
      n.Node.entries acc

let to_list t =
  fold_tree t t.root
    (fun n acc ->
      Entries.fold
        (fun k p acc ->
          match p with Node.Data v -> (k, v) :: acc | Node.Child _ -> acc)
        n.Node.entries acc)
    []
  |> List.rev

let size t = fold_tree t t.root (fun n acc -> acc + Node.size n) 0
let height t = (get t t.root).Node.level + 1
let node_count t = Hashtbl.length t.nodes

let check_invariants t =
  let fail fmt = Fmt.kstr (fun s -> Error s) fmt in
  let rec check id low high =
    let n = get t id in
    if not (Bound.equal n.Node.low low) then
      fail "node %d: low mismatch" n.Node.id
    else if not (Bound.equal n.Node.high high) then
      fail "node %d: high mismatch" n.Node.id
    else if
      not
        (Entries.for_all
           (fun k _ -> k = Bound.min_sentinel || Node.in_range n k)
           n.Node.entries)
    then fail "node %d: entry outside range" n.Node.id
    else if Node.is_leaf n then Ok ()
    else
      (* Check children recursively with the ranges implied by separators. *)
      let entries = Entries.to_list n.Node.entries in
      let rec walk = function
        | [] -> Ok ()
        | (sep, Node.Child c) :: rest ->
          let child_low =
            if sep = Bound.min_sentinel then n.Node.low else Bound.Key sep
          in
          let child_high =
            match rest with
            | (next, _) :: _ -> Bound.Key next
            | [] -> n.Node.high
          in
          (match check c child_low child_high with
          | Ok () -> walk rest
          | Error _ as e -> e)
        | (_, Node.Data _) :: _ -> fail "node %d: data in interior" n.Node.id
      in
      walk entries
  in
  check t.root Bound.Neg_inf Bound.Pos_inf
