type key = int
type 'a t = (key * 'a) array

let empty = [||]
let length = Array.length
let is_empty e = Array.length e = 0

let of_sorted_list l =
  let arr = Array.of_list l in
  for i = 1 to Array.length arr - 1 do
    if fst arr.(i - 1) >= fst arr.(i) then
      invalid_arg "Entries.of_sorted_list: keys not strictly increasing"
  done;
  arr

let to_list = Array.to_list

(* Binary search: index of the greatest entry with key <= k, or -1. *)
let floor_index e k =
  let rec go lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      if fst e.(mid) <= k then go (mid + 1) hi mid else go lo (mid - 1) best
  in
  go 0 (Array.length e - 1) (-1)

let find e k =
  let i = floor_index e k in
  if i >= 0 && fst e.(i) = k then Some (snd e.(i)) else None

let mem e k =
  let i = floor_index e k in
  i >= 0 && fst e.(i) = k

let floor e k =
  let i = floor_index e k in
  if i >= 0 then Some e.(i) else None

let add e k v =
  let i = floor_index e k in
  if i >= 0 && fst e.(i) = k then begin
    let e' = Array.copy e in
    e'.(i) <- (k, v);
    e'
  end
  else begin
    let n = Array.length e in
    let e' = Array.make (n + 1) (k, v) in
    Array.blit e 0 e' 0 (i + 1);
    Array.blit e (i + 1) e' (i + 2) (n - i - 1);
    e'
  end

let remove e k =
  let i = floor_index e k in
  if i >= 0 && fst e.(i) = k then begin
    let n = Array.length e in
    let e' = Array.make (n - 1) e.(0) in
    Array.blit e 0 e' 0 i;
    Array.blit e (i + 1) e' i (n - i - 1);
    e'
  end
  else e

let min_binding e = if Array.length e = 0 then None else Some e.(0)

let max_binding e =
  let n = Array.length e in
  if n = 0 then None else Some e.(n - 1)

let split_half e =
  let n = Array.length e in
  if n < 2 then invalid_arg "Entries.split_half: need at least two entries";
  let mid = n / 2 in
  let left = Array.sub e 0 mid in
  let right = Array.sub e mid (n - mid) in
  (left, fst right.(0), right)

let partition_lt e k =
  let i = floor_index e (k - 1) in
  (* entries [0..i] have key <= k-1, i.e. < k *)
  (Array.sub e 0 (i + 1), Array.sub e (i + 1) (Array.length e - i - 1))

let iter f e = Array.iter (fun (k, v) -> f k v) e
let fold f e acc = Array.fold_left (fun acc (k, v) -> f k v acc) acc e
let for_all f e = Array.for_all (fun (k, v) -> f k v) e
let keys e = Array.to_list (Array.map fst e)

let get e i = e.(i)

let equal eq a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && eq v1 v2) a b

let pp pv ppf e =
  Fmt.pf ppf "[%a]"
    (Fmt.iter ~sep:Fmt.semi (fun f e -> iter (fun k v -> f (k, v)) e)
       (Fmt.pair ~sep:(Fmt.any ":") Fmt.int pv))
    e
