(** Key-space bounds for B-link node ranges.

    Every node of a B-link tree covers a half-open key range
    [\[low, high)].  Ranges need the two infinities, so bounds are keys
    extended with [Neg_inf] and [Pos_inf].

    Keys are [int].  The value [min_int] is reserved as the separator of a
    leftmost child inside interior-node entry lists (meaning "from the
    node's own low bound"); user keys must therefore be greater than
    [min_int]. *)

type key = int

type t = Neg_inf | Key of key | Pos_inf

val compare : t -> t -> int

val compare_key : t -> key -> int
(** [compare_key b k] orders bound [b] against key [k]. *)

val key_in_range : low:t -> high:t -> key -> bool
(** [key_in_range ~low ~high k] is [low <= k < high]. *)

val min_sentinel : key
(** [min_int]: separator standing for "this child starts at the node's low
    bound" in a leftmost interior entry. *)

val pp : t Fmt.t
val equal : t -> t -> bool
