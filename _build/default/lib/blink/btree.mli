(** Sequential B-link tree (Lehman-Yao / Sagiv style).

    The single-process version of the structure the dB-tree distributes:
    every node has a right-sibling link, inserts restructure bottom-up with
    {!Node.half_split}, and a misnavigated descent recovers by chasing
    right links.  Deletion follows the never-merge / free-at-empty policy
    the paper adopts from [11]: keys are removed, nodes are never merged,
    and an empty leaf simply stays linked (it remains navigable).

    Used as (a) the correctness oracle for the distributed protocols,
    (b) the subject of the E1 micro-benchmarks, and (c) a plain ordered
    dictionary in its own right.

    Per-operation counters expose the quantities E1 reports: node accesses,
    link chases, splits, and the size of each atomic restructuring step
    (always 1 node for a B-link tree — that is the point of Figure 1). *)

type key = int
type 'v t

type stats = {
  mutable accesses : int;  (** node visits *)
  mutable right_moves : int;  (** link chases after misnavigation *)
  mutable splits : int;  (** half-splits performed *)
  mutable max_restructure_span : int;
      (** largest number of nodes modified by one atomic action *)
}

val create : ?capacity:int -> unit -> 'v t
(** [capacity] is the maximum entries per node before it must split
    (default 8). *)

val of_sorted : ?capacity:int -> ?fill:float -> (key * 'v) list -> 'v t
(** Bulk load: build a tree bottom-up from bindings with strictly
    increasing keys, packing each node to [fill] (default 0.9) of
    capacity.  O(n); far cheaper than n inserts and yields near-perfect
    utilization. *)

val compact : 'v t -> 'v t
(** Rebuild via {!of_sorted}: reclaims the space a never-merge tree
    accumulates after heavy deletion (the "offline reorganization" a
    free-at-empty policy assumes happens eventually — [11]). *)

val capacity : 'v t -> int
val stats : 'v t -> stats
val reset_stats : 'v t -> unit

val search : 'v t -> key -> 'v option
val mem : 'v t -> key -> bool
val insert : 'v t -> key -> 'v -> unit

val delete : 'v t -> key -> bool
(** [true] iff the key was present.  Never merges nodes. *)

val size : 'v t -> int
(** Number of keys stored. *)

val height : 'v t -> int
(** Number of levels (1 for a single leaf). *)

val node_count : 'v t -> int
val root_id : 'v t -> Node.id
val node : 'v t -> Node.id -> 'v Node.t option

val to_list : 'v t -> (key * 'v) list
(** All bindings in key order, via the leaf-level link list. *)

val leaf_utilization : 'v t -> float
(** Mean fill fraction of leaves (entries / capacity), the never-merge
    space-utilization measure of experiment E11. *)

val range : 'v t -> lo:key -> hi:key -> (key * 'v) list
(** Bindings with [lo <= key <= hi], via the leaf links. *)

val iter : (key -> 'v -> unit) -> 'v t -> unit
(** Visit all bindings in key order (leaf-chain walk). *)

val fold : (key -> 'v -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc

val min_binding : 'v t -> (key * 'v) option
val max_binding : 'v t -> (key * 'v) option

val successor : 'v t -> key -> (key * 'v) option
(** Smallest binding with key strictly greater than the argument. *)

val predecessor : 'v t -> key -> (key * 'v) option
(** Greatest binding with key strictly smaller than the argument. *)

val check_invariants : 'v t -> (unit, string) result
(** Structural audit: contiguous sibling ranges per level, entries within
    range, interior floor-entry invariant, every key reachable from the
    root.  Used by the property tests. *)
