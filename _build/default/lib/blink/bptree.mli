(** Classic B+ tree (no sibling links) — the baseline for experiment E1.

    The standard insertion algorithm: when a leaf overflows, it is split
    and a separator is pushed into the parent *within the same atomic
    restructuring step*, cascading to the root.  In a concurrent or
    distributed setting this whole cascade must be protected (lock coupling
    / an AAS spanning the path), which is exactly the cost the half-split
    of Figure 1 avoids.  The tree records the span of each restructure so
    E1 can report "nodes modified atomically per insert" for both trees.

    Functionally equivalent to {!Btree} on search/insert, so the two also
    serve as mutual oracles in the property tests. *)

type key = int
type 'v t

type stats = {
  mutable accesses : int;
  mutable splits : int;
  mutable max_restructure_span : int;
      (** nodes modified in the largest single atomic restructure *)
  mutable restructure_spans : int;
      (** sum of spans over all inserts that split *)
}

val create : ?capacity:int -> unit -> 'v t
val stats : 'v t -> stats
val reset_stats : 'v t -> unit

val search : 'v t -> key -> 'v option
val mem : 'v t -> key -> bool
val insert : 'v t -> key -> 'v -> unit
val size : 'v t -> int
val height : 'v t -> int
val node_count : 'v t -> int
val to_list : 'v t -> (key * 'v) list
val check_invariants : 'v t -> (unit, string) result
