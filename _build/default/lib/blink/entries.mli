(** Immutable sorted entry list of a search-structure node.

    An ['a t] is a sequence of (key, payload) pairs with strictly
    increasing keys, backed by an array.  Node fan-out is small (tens of
    entries), so O(n) copies on update are cheap and the immutability makes
    the protocol code — where one logical node has several physical copies
    evolving independently — much easier to get right: two copies never
    alias storage. *)

type key = int
type 'a t

val empty : 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val of_sorted_list : (key * 'a) list -> 'a t
(** Keys must be strictly increasing; raises [Invalid_argument] otherwise. *)

val to_list : 'a t -> (key * 'a) list

val find : 'a t -> key -> 'a option
(** Exact-key binary search. *)

val mem : 'a t -> key -> bool

val floor : 'a t -> key -> (key * 'a) option
(** Greatest entry with key <= the argument — the B-link child-selection
    step for interior nodes. *)

val add : 'a t -> key -> 'a -> 'a t
(** Insert, replacing the payload if the key is already present. *)

val remove : 'a t -> key -> 'a t
(** Remove if present; identity otherwise. *)

val min_binding : 'a t -> (key * 'a) option
val max_binding : 'a t -> (key * 'a) option

val split_half : 'a t -> 'a t * key * 'a t
(** [split_half e] is [(left, sep, right)] where [right] holds the upper
    half of the entries (at least one), [sep] is [right]'s smallest key and
    [left] the rest.  Requires [length e >= 2]. *)

val partition_lt : 'a t -> key -> 'a t * 'a t
(** [partition_lt e k] splits into entries with keys < k and >= k. *)

val iter : (key -> 'a -> unit) -> 'a t -> unit
val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val for_all : (key -> 'a -> bool) -> 'a t -> bool
val keys : 'a t -> key list
val get : 'a t -> int -> key * 'a
(** [get e i] is the i-th smallest entry.  Raises if out of bounds. *)

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
val pp : 'a Fmt.t -> 'a t Fmt.t
