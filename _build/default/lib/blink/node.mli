(** B-link node model.

    A node is identified by an integer id, sits at a [level] (0 = leaf),
    covers the half-open key range [\[low, high)], holds sorted entries,
    and points to its right (and optionally left) sibling.  Interior
    entries map a separator key to a child node id ([Child]); leaf entries
    hold user data ([Data]).  A leftmost interior entry uses
    {!Bound.min_sentinel} as its separator.

    The [version] field implements the paper's version numbers (§4.2-4.3):
    it increments on every half-split, migration, join and unjoin, and
    orders link-change actions.

    Nodes are mutable records: a distributed node copy is one of these plus
    per-copy replication metadata kept by the protocol layer.  All
    navigation logic (where does an action on key [k] go next?) lives here
    so that the sequential tree and every distributed protocol share it. *)

type key = int
type id = int

type 'v payload = Child of id | Data of 'v

type 'v t = {
  id : id;
  level : int;  (** 0 for leaves *)
  mutable low : Bound.t;
  mutable high : Bound.t;
  mutable entries : 'v payload Entries.t;
  mutable right : id option;
  mutable left : id option;
  mutable parent : id option;  (** hint; may go stale, B-link recovery copes *)
  mutable version : int;
}

val make :
  id:id ->
  level:int ->
  low:Bound.t ->
  high:Bound.t ->
  ?right:id ->
  ?left:id ->
  ?parent:id ->
  ?version:int ->
  'v payload Entries.t ->
  'v t

val is_leaf : 'v t -> bool
val in_range : 'v t -> key -> bool

(** Result of one navigation step at a node, for an action on key [k]. *)
type step =
  | Here  (** [k] is in range and this is a leaf: act locally. *)
  | Descend of id  (** interior node: continue at this child *)
  | Chase_right of id  (** [k] >= high: follow the right link *)
  | Chase_left of id  (** [k] < low (mobile nodes only): follow left link *)
  | Dead_end  (** out of range with no link to follow — caller recovers *)

val step : 'v t -> key -> step
(** The B-link navigation step (§1.1): out-of-range keys chase sibling
    links; in-range keys descend (interior) or act here (leaf). *)

val find_leaf_value : 'v t -> key -> 'v option
(** Exact lookup in a leaf.  Raises [Invalid_argument] on interior nodes. *)

val add_entry : 'v t -> key -> 'v payload -> unit
val remove_entry : 'v t -> key -> unit
val size : 'v t -> int

val too_full : capacity:int -> 'v t -> bool
(** True when the node holds more than [capacity] entries and can split
    (i.e. has at least two).  Copies may transiently exceed capacity — the
    paper's "overflow bucket" (§4.1). *)

val half_split : 'v t -> sibling_id:id -> 'v t
(** Perform the half-split of Figure 1 on this node: move the upper half of
    the entries into a fresh sibling, shrink this node's range to
    [\[low, sep)], link the sibling into the node list, and bump the
    version.  Returns the new sibling, which covers [\[sep, old high)] and
    inherits the old right link.  The pointer to the sibling still has to
    be inserted into the parent — that is the "second step" the lazy
    protocols order. *)

val separator_of_sibling : 'v t -> key
(** The separator key under which a freshly split-off sibling must be
    inserted into the parent: its low bound, which is always a real key. *)

val clone : 'v t -> 'v t
(** Deep-enough copy (entries are immutable): a new record that can evolve
    independently — how a replica is born from an existing copy's value. *)

val content_equal : ('v -> 'v -> bool) -> 'v t -> 'v t -> bool
(** Equality of node *values* (range, entries, links, level) — the
    single-copy-equivalence check.  Ignores [id] (equal by construction)
    and compares versions too. *)

val pp : 'v Fmt.t -> 'v t Fmt.t
val pp_payload : 'v Fmt.t -> 'v payload Fmt.t
