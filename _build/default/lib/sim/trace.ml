type t = { mutable enabled : bool; mutable events : (int * string) list }

let create ?(enabled = false) () = { enabled; events = [] }
let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let emit t ~time line =
  if t.enabled then t.events <- (time, Lazy.force line) :: t.events

let to_list t = List.rev t.events

let pp ppf t =
  List.iter (fun (time, line) -> Fmt.pf ppf "[%6d] %s@." time line) (to_list t)

let clear t = t.events <- []
