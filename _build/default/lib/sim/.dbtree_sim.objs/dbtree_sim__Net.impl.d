lib/sim/net.ml: Array Fmt List Rng Sim Stats
