lib/sim/net.mli: Sim
