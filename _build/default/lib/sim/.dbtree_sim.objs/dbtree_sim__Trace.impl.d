lib/sim/trace.ml: Fmt Lazy List
