lib/sim/rng.mli:
