lib/sim/sim.ml: Heap Rng Stats
