lib/sim/trace.mli: Fmt Lazy
