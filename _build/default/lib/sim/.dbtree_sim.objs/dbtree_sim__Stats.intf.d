lib/sim/stats.mli: Fmt
