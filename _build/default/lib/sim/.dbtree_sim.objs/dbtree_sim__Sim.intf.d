lib/sim/sim.mli: Rng Stats
