lib/sim/rng.ml: Array Int64
