lib/sim/heap.mli:
