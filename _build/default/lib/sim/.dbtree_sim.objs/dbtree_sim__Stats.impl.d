lib/sim/stats.ml: Float Fmt Hashtbl List Option String
