(** Named counters and summaries for simulation runs.

    A [Stats.t] is a mutable bag of metrics keyed by string.  Protocol code
    increments counters ("msg.relay_insert", "split.blocked", ...) and the
    experiment harness reads them back after the run.  Two metric shapes are
    supported: integer counters and scalar summaries (count / sum / min /
    max), the latter used for latencies and queue lengths. *)

type t

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
}

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump counter [name] by [by] (default 1), creating it at 0 if absent. *)

val get : t -> string -> int
(** Counter value, 0 if never incremented. *)

val observe : t -> string -> float -> unit
(** Record one sample into summary [name]. *)

val summary : t -> string -> summary option
val mean : summary -> float

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val summaries : t -> (string * summary) list

val get_prefix : t -> string -> int
(** [get_prefix t p] sums every counter whose name starts with [p]. *)

val reset : t -> unit

val pp : t Fmt.t
(** Render all metrics, one per line, for debugging. *)
