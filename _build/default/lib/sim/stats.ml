type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  summaries : (string, summary ref) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 64; summaries = Hashtbl.create 16 }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name x =
  match Hashtbl.find_opt t.summaries name with
  | Some r ->
    let s = !r in
    r :=
      {
        count = s.count + 1;
        sum = s.sum +. x;
        min = Float.min s.min x;
        max = Float.max s.max x;
      }
  | None ->
    Hashtbl.add t.summaries name (ref { count = 1; sum = x; min = x; max = x })

let summary t name =
  Option.map (fun r -> !r) (Hashtbl.find_opt t.summaries name)

let mean s = if s.count = 0 then 0.0 else s.sum /. float_of_int s.count

let sorted_bindings tbl extract =
  Hashtbl.fold (fun k v acc -> (k, extract v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters (fun r -> !r)
let summaries t = sorted_bindings t.summaries (fun r -> !r)

let get_prefix t p =
  let plen = String.length p in
  Hashtbl.fold
    (fun k r acc ->
      if String.length k >= plen && String.sub k 0 plen = p then acc + !r
      else acc)
    t.counters 0

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.summaries

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%s = %d@." k v) (counters t);
  List.iter
    (fun (k, s) ->
      Fmt.pf ppf "%s: n=%d mean=%.2f min=%.2f max=%.2f@." k s.count (mean s)
        s.min s.max)
    (summaries t)
