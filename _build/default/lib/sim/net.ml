module type MESSAGE = sig
  type t

  val kind : t -> string
  val size : t -> int
end

type latency = { local_delay : int; remote_base : int; remote_jitter : int }

let default_latency = { local_delay = 1; remote_base = 20; remote_jitter = 5 }
let zero_latency = { local_delay = 0; remote_base = 0; remote_jitter = 0 }

type faults = { duplicate_prob : float; delay_prob : float; delay_ticks : int }

let no_faults = { duplicate_prob = 0.0; delay_prob = 0.0; delay_ticks = 0 }

module Make (M : MESSAGE) = struct
  type pid = int

  type t = {
    sim : Sim.t;
    procs : int;
    latency : latency;
    faults : faults;
    handlers : (src:pid -> M.t -> unit) option array;
    (* Last scheduled delivery time per (src, dst) channel; FIFO is enforced
       by never scheduling a delivery at or before this time. *)
    channel_front : int array;
    inbound : int array;
    rng : Rng.t;
    mutable remote : int;
    mutable local : int;
    mutable bytes : int;
  }

  let create ?(latency = default_latency) ?(faults = no_faults) sim ~procs =
    {
      sim;
      procs;
      latency;
      faults;
      handlers = Array.make procs None;
      channel_front = Array.make (procs * procs) min_int;
      inbound = Array.make procs 0;
      rng = Rng.split (Sim.rng sim);
      remote = 0;
      local = 0;
      bytes = 0;
    }

  let sim t = t.sim
  let procs t = t.procs

  let set_handler t pid handler =
    if pid < 0 || pid >= t.procs then invalid_arg "Net.set_handler: bad pid";
    t.handlers.(pid) <- Some handler

  let deliver t ~src ~dst msg =
    match t.handlers.(dst) with
    | Some handler -> handler ~src msg
    | None -> Fmt.failwith "Net: no handler registered for processor %d" dst

  let send t ~src ~dst msg =
    if dst < 0 || dst >= t.procs then invalid_arg "Net.send: bad dst";
    let stats = Sim.stats t.sim in
    let raw_delay =
      if src = dst then t.latency.local_delay
      else begin
        t.remote <- t.remote + 1;
        t.bytes <- t.bytes + M.size msg;
        t.inbound.(dst) <- t.inbound.(dst) + 1;
        Stats.incr stats "net.msgs";
        Stats.incr stats ("net.msg." ^ M.kind msg);
        Stats.incr ~by:(M.size msg) stats "net.bytes";
        t.latency.remote_base
        + (if t.latency.remote_jitter > 0 then
             Rng.int t.rng t.latency.remote_jitter
           else 0)
      end
    in
    if src = dst then begin
      t.local <- t.local + 1;
      Stats.incr stats "net.local"
    end;
    let chan = (src * t.procs) + dst in
    let now = Sim.now t.sim in
    (* FIFO per channel: a message may not overtake an earlier one. *)
    let at = max (now + raw_delay) (t.channel_front.(chan) + 1) in
    t.channel_front.(chan) <- at;
    Sim.schedule t.sim ~delay:(at - now) (fun () -> deliver t ~src ~dst msg);
    if src <> dst then begin
      (* fault injection (off by default): duplicate delivery, and FIFO
         violation via an extra late delivery of a copy *)
      if
        t.faults.duplicate_prob > 0.0
        && Rng.float t.rng 1.0 < t.faults.duplicate_prob
      then begin
        Stats.incr stats "net.fault.duplicated";
        Sim.schedule t.sim ~delay:(at - now + 1) (fun () ->
            deliver t ~src ~dst msg)
      end;
      if t.faults.delay_prob > 0.0 && Rng.float t.rng 1.0 < t.faults.delay_prob
      then begin
        Stats.incr stats "net.fault.delayed";
        Sim.schedule t.sim
          ~delay:(at - now + t.faults.delay_ticks)
          (fun () -> deliver t ~src ~dst msg)
      end
    end

  let broadcast t ~src ~dsts msg =
    List.iter (fun dst -> if dst <> src then send t ~src ~dst msg) dsts

  let remote_messages t = t.remote
  let local_messages t = t.local
  let bytes_sent t = t.bytes
  let sent_to t pid = t.inbound.(pid)
end
