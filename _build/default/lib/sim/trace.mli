(** Lightweight event trace.

    Protocol code emits human-readable trace lines; experiments that
    illustrate an interleaving (e.g. the Figure 3 concurrent-split scenario)
    print the collected trace.  When disabled, [emit] costs one branch and
    never forces the lazy message. *)

type t

val create : ?enabled:bool -> unit -> t
(** Disabled by default. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val emit : t -> time:int -> string Lazy.t -> unit

val to_list : t -> (int * string) list
(** All recorded (time, line) pairs, in emission order. *)

val pp : t Fmt.t
val clear : t -> unit
