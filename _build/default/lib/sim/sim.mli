(** Deterministic discrete-event simulator.

    This is the substrate standing in for the paper's message-passing
    multicomputer: virtual time in integer ticks, a pending-event heap, and
    an event loop that runs callbacks in (time, insertion) order.  Each
    callback executes atomically, which gives exactly the paper's execution
    model — the node manager processes one action at a time, and an action
    on a node cannot be interrupted by another action (§1.1).

    All randomness flows through {!rng}, so a run is a pure function of the
    seed and the scheduled work. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh simulator at time 0.  Default [seed] is 42. *)

val now : t -> int
(** Current virtual time, in ticks. *)

val pending : t -> int
(** Number of events waiting in the heap.  Periodic background activities
    (e.g. a data balancer) use this to self-disarm when they are the only
    thing left, so the simulation can quiesce. *)

val rng : t -> Rng.t
val stats : t -> Stats.t

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at time [now t + max delay 0].  Events
    with equal times run in scheduling order. *)

exception Budget_exhausted

val run : ?max_events:int -> ?max_time:int -> t -> unit
(** Drain the event heap until quiescence (no pending events).

    @param max_events raise {!Budget_exhausted} after this many events —
           a runaway-protocol backstop for tests.
    @param max_time stop (without error) once the next event lies strictly
           beyond this time; the event stays pending. *)

val step : t -> bool
(** Execute the single next event.  Returns [false] if none is pending. *)

val events_processed : t -> int
