(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator draws from an explicit [Rng.t]
    so that a run is fully reproducible from its seed.  The generator is
    splitmix64, which is fast, has a 64-bit state, and supports cheap
    derivation of independent streams ({!split}). *)

type t

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds give equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new, statistically independent stream from [t],
    advancing [t].  Use one stream per concern (workload, latency, ...) so
    adding draws to one concern does not perturb the others. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0 .. n-1]. *)
