type event = { time : int; seq : int; action : unit -> unit }

type t = {
  mutable now : int;
  mutable seq : int;
  mutable processed : int;
  pending : event Heap.t;
  rng : Rng.t;
  stats : Stats.t;
}

let compare_event a b =
  match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

let create ?(seed = 42) () =
  {
    now = 0;
    seq = 0;
    processed = 0;
    pending = Heap.create ~cmp:compare_event;
    rng = Rng.create seed;
    stats = Stats.create ();
  }

let now t = t.now
let pending t = Heap.length t.pending
let rng t = t.rng
let stats t = t.stats
let events_processed t = t.processed

let schedule t ~delay action =
  let delay = max delay 0 in
  let ev = { time = t.now + delay; seq = t.seq; action } in
  t.seq <- t.seq + 1;
  Heap.add t.pending ev

exception Budget_exhausted

let step t =
  match Heap.pop t.pending with
  | None -> false
  | Some ev ->
    t.now <- ev.time;
    t.processed <- t.processed + 1;
    ev.action ();
    true

let run ?max_events ?max_time t =
  let exceeded () =
    match max_events with Some m -> t.processed >= m | None -> false
  in
  let in_horizon ev =
    match max_time with Some limit -> ev.time <= limit | None -> true
  in
  let rec loop () =
    if exceeded () then raise Budget_exhausted;
    match Heap.peek t.pending with
    | None -> ()
    | Some ev when not (in_horizon ev) -> ()
    | Some _ ->
      ignore (step t);
      loop ()
  in
  loop ()
