(* The synchronous Kv facade, across every backing protocol, including a
   model-based property test against a Map. *)
open Dbtree_core
module IntMap = Map.Make (Int)

let protocols =
  [
    ("semi", Kv.Semi); ("sync", Kv.Sync); ("eager", Kv.Eager);
    ("mobile", Kv.Mobile); ("variable", Kv.Variable);
  ]

let cfg ?(seed = 42) () = Config.make ~procs:4 ~capacity:4 ~key_space:50_000 ~seed ()

let test_all_protocols () =
  List.iter
    (fun (name, protocol) ->
      let db = Kv.create ~protocol (cfg ()) in
      Kv.put db 10 "ten";
      Kv.put db 20 "twenty";
      Kv.put db 30 "thirty";
      Alcotest.(check (option string)) (name ^ ": get") (Some "twenty") (Kv.get db 20);
      Alcotest.(check (option string)) (name ^ ": miss") None (Kv.get db 25);
      Alcotest.(check bool) (name ^ ": delete hit") true (Kv.delete db 20);
      Alcotest.(check bool) (name ^ ": delete miss") false (Kv.delete db 20);
      Alcotest.(check (list (pair int string)))
        (name ^ ": range")
        [ (10, "ten"); (30, "thirty") ]
        (Kv.range db ~lo:0 ~hi:100);
      Alcotest.(check bool) (name ^ ": mem") true (Kv.mem db 10);
      Alcotest.(check bool)
        (name ^ ": verified")
        true
        (Verify.ok (Kv.verify db)))
    protocols

let test_put_overwrites () =
  let db = Kv.create (cfg ()) in
  Kv.put db 5 "a";
  Kv.put db 5 "b";
  Alcotest.(check (option string)) "overwritten" (Some "b") (Kv.get db 5)

let test_at_selects_processor () =
  let db = Kv.create (cfg ()) in
  Kv.put db ~at:0 1 "one";
  List.iter
    (fun at ->
      Alcotest.(check (option string))
        (Fmt.str "visible from p%d" at)
        (Some "one") (Kv.get db ~at 1))
    [ 0; 1; 2; 3 ]

let prop_kv_model =
  QCheck.Test.make ~name:"Kv behaves like a Map (all protocols)" ~count:30
    QCheck.(
      pair (int_bound 4)
        (list (pair (int_range 1 60) (int_bound 500))))
    (fun (pidx, script) ->
      let _, protocol = List.nth protocols (pidx mod List.length protocols) in
      let db = Kv.create ~protocol (cfg ~seed:(pidx + 7) ()) in
      let model = ref IntMap.empty in
      List.for_all
        (fun (k, v) ->
          match v mod 3 with
          | 0 ->
            Kv.put db k (string_of_int v);
            model := IntMap.add k (string_of_int v) !model;
            true
          | 1 ->
            let expected = IntMap.mem k !model in
            model := IntMap.remove k !model;
            Kv.delete db k = expected
          | _ -> Kv.get db k = IntMap.find_opt k !model)
        script
      && Kv.range db ~lo:0 ~hi:1000 = IntMap.bindings !model)

let suite =
  [
    Alcotest.test_case "all protocols behind one facade" `Quick test_all_protocols;
    Alcotest.test_case "put overwrites" `Quick test_put_overwrites;
    Alcotest.test_case "explicit entry processor" `Quick test_at_selects_processor;
    QCheck_alcotest.to_alcotest prop_kv_model;
  ]
