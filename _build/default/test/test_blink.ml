(* Tests for the B-link substrate: entries, node model, sequential B-link
   tree (against a Map model and the classic B+ tree), invariants. *)
open Dbtree_blink
module IntMap = Map.Make (Int)

(* ---------------- Entries ---------------- *)

let entries_of_list l =
  List.sort_uniq (fun (a, _) (b, _) -> compare a b) l |> Entries.of_sorted_list

let test_entries_basic () =
  let e = entries_of_list [ (1, "a"); (5, "b"); (9, "c") ] in
  Alcotest.(check int) "length" 3 (Entries.length e);
  Alcotest.(check (option string)) "find hit" (Some "b") (Entries.find e 5);
  Alcotest.(check (option string)) "find miss" None (Entries.find e 4);
  Alcotest.(check bool) "mem" true (Entries.mem e 9);
  Alcotest.(check (option (pair int string)))
    "floor exact" (Some (5, "b")) (Entries.floor e 5);
  Alcotest.(check (option (pair int string)))
    "floor between" (Some (5, "b")) (Entries.floor e 8);
  Alcotest.(check (option (pair int string))) "floor below" None (Entries.floor e 0);
  Alcotest.(check (option (pair int string)))
    "min" (Some (1, "a")) (Entries.min_binding e);
  Alcotest.(check (option (pair int string)))
    "max" (Some (9, "c")) (Entries.max_binding e)

let test_entries_add_replace () =
  let e = entries_of_list [ (1, "a"); (5, "b") ] in
  let e = Entries.add e 5 "B" in
  Alcotest.(check int) "replace keeps length" 2 (Entries.length e);
  Alcotest.(check (option string)) "replaced" (Some "B") (Entries.find e 5);
  let e = Entries.add e 3 "c" in
  Alcotest.(check (list int)) "sorted keys" [ 1; 3; 5 ] (Entries.keys e)

let test_entries_remove () =
  let e = entries_of_list [ (1, "a"); (5, "b"); (9, "c") ] in
  let e = Entries.remove e 5 in
  Alcotest.(check (list int)) "removed" [ 1; 9 ] (Entries.keys e);
  let e' = Entries.remove e 42 in
  Alcotest.(check (list int)) "remove absent is id" [ 1; 9 ] (Entries.keys e')

let test_entries_split_half () =
  let e = entries_of_list (List.init 7 (fun i -> (i * 2, string_of_int i))) in
  let left, sep, right = Entries.split_half e in
  Alcotest.(check int) "sep is right's min" sep (fst (Option.get (Entries.min_binding right)));
  Alcotest.(check int) "total preserved" 7 (Entries.length left + Entries.length right);
  Alcotest.(check bool) "left < sep" true (Entries.for_all (fun k _ -> k < sep) left);
  Alcotest.(check bool) "right >= sep" true (Entries.for_all (fun k _ -> k >= sep) right)

let test_entries_partition () =
  let e = entries_of_list [ (1, "a"); (5, "b"); (9, "c") ] in
  let lt, ge = Entries.partition_lt e 5 in
  Alcotest.(check (list int)) "lt" [ 1 ] (Entries.keys lt);
  Alcotest.(check (list int)) "ge" [ 5; 9 ] (Entries.keys ge);
  let lt, ge = Entries.partition_lt e 100 in
  Alcotest.(check int) "all lt" 3 (Entries.length lt);
  Alcotest.(check int) "none ge" 0 (Entries.length ge)

let test_entries_rejects_unsorted () =
  Alcotest.check_raises "unsorted input"
    (Invalid_argument "Entries.of_sorted_list: keys not strictly increasing")
    (fun () -> ignore (Entries.of_sorted_list [ (2, ()); (1, ()) ]))

let prop_entries_model =
  QCheck.Test.make ~name:"entries behave like a Map" ~count:300
    QCheck.(list (pair (int_bound 100) (int_bound 1000)))
    (fun ops ->
      let e, m =
        List.fold_left
          (fun (e, m) (k, v) ->
            if v mod 5 = 0 then (Entries.remove e k, IntMap.remove k m)
            else (Entries.add e k v, IntMap.add k v m))
          (Entries.empty, IntMap.empty)
          ops
      in
      Entries.to_list e = IntMap.bindings m)

let prop_entries_floor =
  QCheck.Test.make ~name:"floor = greatest key <= probe" ~count:300
    QCheck.(pair (list (int_bound 100)) (int_bound 100))
    (fun (keys, probe) ->
      let e =
        List.fold_left (fun e k -> Entries.add e k k) Entries.empty keys
      in
      let expect =
        List.sort_uniq compare keys
        |> List.filter (fun k -> k <= probe)
        |> fun l -> match List.rev l with [] -> None | k :: _ -> Some (k, k)
      in
      Entries.floor e probe = expect)

(* ---------------- Bound & Node ---------------- *)

let test_bound_order () =
  let open Bound in
  Alcotest.(check bool) "neg < key" true (compare Neg_inf (Key 0) < 0);
  Alcotest.(check bool) "key < pos" true (compare (Key max_int) Pos_inf < 0);
  Alcotest.(check bool) "key order" true (compare (Key 1) (Key 2) < 0);
  Alcotest.(check bool) "in range" true (key_in_range ~low:(Key 5) ~high:(Key 10) 5);
  Alcotest.(check bool) "high exclusive" false
    (key_in_range ~low:(Key 5) ~high:(Key 10) 10);
  Alcotest.(check bool) "infinite range" true
    (key_in_range ~low:Neg_inf ~high:Pos_inf 12345)

let leaf_with keys =
  let entries =
    Entries.of_sorted_list (List.map (fun k -> (k, Node.Data (string_of_int k))) keys)
  in
  Node.make ~id:1 ~level:0 ~low:(Bound.Key 0) ~high:(Bound.Key 100) ~right:2
    entries

let test_node_step_leaf () =
  let n = leaf_with [ 10; 20 ] in
  (match Node.step n 10 with
  | Node.Here -> ()
  | _ -> Alcotest.fail "expected Here");
  (match Node.step n 150 with
  | Node.Chase_right 2 -> ()
  | _ -> Alcotest.fail "expected Chase_right");
  match Node.step n (-5) with
  | Node.Dead_end -> ()
  | _ -> Alcotest.fail "expected Dead_end (no left link)"

let test_node_step_interior () =
  let entries =
    Entries.of_sorted_list
      [ (Bound.min_sentinel, Node.Child 10); (50, Node.Child 11) ]
  in
  let n =
    Node.make ~id:5 ~level:1 ~low:Bound.Neg_inf ~high:(Bound.Key 100) ~right:6
      entries
  in
  (match Node.step n 7 with
  | Node.Descend 10 -> ()
  | _ -> Alcotest.fail "descend leftmost");
  (match Node.step n 50 with
  | Node.Descend 11 -> ()
  | _ -> Alcotest.fail "descend at separator");
  match Node.step n 100 with
  | Node.Chase_right 6 -> ()
  | _ -> Alcotest.fail "chase right at high"

let test_node_half_split () =
  let n = leaf_with [ 10; 20; 30; 40 ] in
  let v0 = n.Node.version in
  let sib = Node.half_split n ~sibling_id:99 in
  Alcotest.(check int) "sep" 30 (Node.separator_of_sibling sib);
  Alcotest.(check (list int)) "left keys" [ 10; 20 ] (Entries.keys n.Node.entries);
  Alcotest.(check (list int)) "right keys" [ 30; 40 ] (Entries.keys sib.Node.entries);
  Alcotest.(check bool) "left high = sep" true (Bound.equal n.Node.high (Bound.Key 30));
  Alcotest.(check bool) "sib low = sep" true (Bound.equal sib.Node.low (Bound.Key 30));
  Alcotest.(check (option int)) "link to sibling" (Some 99) n.Node.right;
  Alcotest.(check (option int)) "sibling inherits right" (Some 2) sib.Node.right;
  Alcotest.(check (option int)) "sibling left link" (Some 1) sib.Node.left;
  Alcotest.(check int) "versions bumped" (v0 + 1) n.Node.version;
  Alcotest.(check int) "sibling version" (v0 + 1) sib.Node.version

let test_node_content_equal () =
  let a = leaf_with [ 1; 2 ] and b = leaf_with [ 1; 2 ] in
  Alcotest.(check bool) "equal" true (Node.content_equal String.equal a b);
  Node.add_entry b 3 (Node.Data "3");
  Alcotest.(check bool) "differ" false (Node.content_equal String.equal a b);
  let c = leaf_with [ 1; 2 ] in
  let d = Node.clone c in
  Node.add_entry d 9 (Node.Data "9");
  Alcotest.(check bool) "clone does not alias" false
    (Node.content_equal String.equal c d)

(* ---------------- Sequential B-link tree ---------------- *)

let check_inv t =
  match Btree.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invariant: " ^ e)

let test_btree_basic () =
  let t = Btree.create ~capacity:4 () in
  Alcotest.(check (option string)) "empty search" None (Btree.search t 5);
  Btree.insert t 5 "five";
  Btree.insert t 3 "three";
  Btree.insert t 8 "eight";
  Alcotest.(check (option string)) "found" (Some "five") (Btree.search t 5);
  Alcotest.(check int) "size" 3 (Btree.size t);
  Alcotest.(check (list (pair int string)))
    "sorted bindings"
    [ (3, "three"); (5, "five"); (8, "eight") ]
    (Btree.to_list t);
  check_inv t

let test_btree_grows () =
  let t = Btree.create ~capacity:4 () in
  for i = 1 to 500 do
    Btree.insert t i (string_of_int i)
  done;
  Alcotest.(check int) "size" 500 (Btree.size t);
  Alcotest.(check bool) "height grew" true (Btree.height t > 2);
  Alcotest.(check bool) "splits happened" true ((Btree.stats t).Btree.splits > 50);
  Alcotest.(check int) "blink restructures touch one node" 1
    (Btree.stats t).Btree.max_restructure_span;
  check_inv t;
  for i = 1 to 500 do
    Alcotest.(check bool) (Fmt.str "mem %d" i) true (Btree.mem t i)
  done

let test_btree_delete_never_merges () =
  let t = Btree.create ~capacity:4 () in
  for i = 1 to 200 do
    Btree.insert t i (string_of_int i)
  done;
  let nodes_before = Btree.node_count t in
  for i = 1 to 200 do
    if i mod 2 = 0 then
      Alcotest.(check bool) "delete present" true (Btree.delete t i)
  done;
  Alcotest.(check bool) "delete absent" false (Btree.delete t 1000);
  Alcotest.(check int) "half left" 100 (Btree.size t);
  Alcotest.(check int) "free-at-empty: no merges" nodes_before (Btree.node_count t);
  Alcotest.(check bool) "utilization dropped" true (Btree.leaf_utilization t < 0.8);
  check_inv t

let test_btree_range () =
  let t = Btree.create ~capacity:4 () in
  List.iter (fun i -> Btree.insert t i (string_of_int i)) [ 1; 5; 10; 15; 20 ];
  Alcotest.(check (list int))
    "range" [ 5; 10; 15 ]
    (List.map fst (Btree.range t ~lo:4 ~hi:16));
  Alcotest.(check (list int)) "empty range" [] (List.map fst (Btree.range t ~lo:6 ~hi:9))

let test_btree_update_in_place () =
  let t = Btree.create () in
  Btree.insert t 1 "a";
  Btree.insert t 1 "b";
  Alcotest.(check int) "no duplicate" 1 (Btree.size t);
  Alcotest.(check (option string)) "updated" (Some "b") (Btree.search t 1)

(* A scripted interpreter runs the same operations against Btree, Bptree
   and a Map — three implementations, one semantics. *)
type script_op = S_insert of int * int | S_delete of int | S_search of int

let script_gen =
  let open QCheck.Gen in
  let op =
    frequency
      [
        (5, map2 (fun k v -> S_insert (k, v)) (int_bound 500) (int_bound 10_000));
        (2, map (fun k -> S_delete k) (int_bound 500));
        (3, map (fun k -> S_search k) (int_bound 500));
      ]
  in
  list_size (int_bound 400) op

let script_arb =
  QCheck.make ~print:(fun s -> Fmt.str "%d ops" (List.length s)) script_gen

let prop_btree_vs_model =
  QCheck.Test.make ~name:"btree = Map under insert/delete/search" ~count:100
    script_arb
    (fun script ->
      let t = Btree.create ~capacity:4 () in
      let model = ref IntMap.empty in
      List.for_all
        (fun op ->
          match op with
          | S_insert (k, v) ->
            let k = k + 1 in
            Btree.insert t k (string_of_int v);
            model := IntMap.add k (string_of_int v) !model;
            true
          | S_delete k ->
            let k = k + 1 in
            let expected = IntMap.mem k !model in
            model := IntMap.remove k !model;
            Btree.delete t k = expected
          | S_search k ->
            let k = k + 1 in
            Btree.search t k = IntMap.find_opt k !model)
        script
      && Btree.to_list t = IntMap.bindings !model
      && Btree.check_invariants t = Ok ())

let prop_btree_eq_bptree =
  QCheck.Test.make ~name:"B-link tree = classic B+ tree on inserts" ~count:100
    QCheck.(list (pair (int_bound 1000) (int_bound 1000)))
    (fun kvs ->
      let bl = Btree.create ~capacity:4 () in
      let bp = Bptree.create ~capacity:4 () in
      List.iter
        (fun (k, v) ->
          let k = k + 1 in
          Btree.insert bl k (string_of_int v);
          Bptree.insert bp k (string_of_int v))
        kvs;
      Btree.to_list bl = Bptree.to_list bp
      && Bptree.check_invariants bp = Ok ())

let test_bptree_span_grows () =
  let bp = Bptree.create ~capacity:4 () in
  (* Sequential inserts cascade splits up the tree: the classic algorithm's
     atomic restructure spans several nodes, unlike the half-split. *)
  for i = 1 to 2000 do
    Bptree.insert bp i (string_of_int i)
  done;
  Alcotest.(check bool) "cascades span > 1 node" true
    ((Bptree.stats bp).Bptree.max_restructure_span > 3);
  Alcotest.(check int) "size" 2000 (Bptree.size bp)

let test_btree_ordered_queries () =
  let t = Btree.create ~capacity:4 () in
  Alcotest.(check (option (pair int string))) "empty min" None (Btree.min_binding t);
  Alcotest.(check (option (pair int string))) "empty max" None (Btree.max_binding t);
  Alcotest.(check (option (pair int string))) "empty succ" None (Btree.successor t 5);
  List.iter (fun k -> Btree.insert t k (string_of_int k)) [ 10; 20; 30; 40; 50 ];
  Alcotest.(check (option (pair int string))) "min" (Some (10, "10")) (Btree.min_binding t);
  Alcotest.(check (option (pair int string))) "max" (Some (50, "50")) (Btree.max_binding t);
  Alcotest.(check (option (pair int string))) "succ mid" (Some (30, "30")) (Btree.successor t 20);
  Alcotest.(check (option (pair int string))) "succ between" (Some (30, "30")) (Btree.successor t 25);
  Alcotest.(check (option (pair int string))) "succ of max" None (Btree.successor t 50);
  Alcotest.(check (option (pair int string))) "pred mid" (Some (20, "20")) (Btree.predecessor t 30);
  Alcotest.(check (option (pair int string))) "pred of min" None (Btree.predecessor t 10);
  (* iter/fold agree with to_list *)
  let via_fold = List.rev (Btree.fold (fun k v acc -> (k, v) :: acc) t []) in
  Alcotest.(check (list (pair int string))) "fold ordered" (Btree.to_list t) via_fold;
  let count = ref 0 in
  Btree.iter (fun _ _ -> incr count) t;
  Alcotest.(check int) "iter visits all" 5 !count

let prop_btree_successor =
  QCheck.Test.make ~name:"successor matches the sorted list" ~count:200
    QCheck.(pair (list (int_range 1 200)) (int_range 0 201))
    (fun (keys, probe) ->
      let t = Btree.create ~capacity:4 () in
      List.iter (fun k -> Btree.insert t k "v") keys;
      let sorted = List.sort_uniq compare keys in
      let expect = List.find_opt (fun k -> k > probe) sorted in
      Option.map fst (Btree.successor t probe) = expect)

let test_bulk_load () =
  let bindings = List.init 5000 (fun i -> ((i * 3) + 1, string_of_int i)) in
  let t = Btree.of_sorted ~capacity:8 bindings in
  Alcotest.(check int) "size" 5000 (Btree.size t);
  Alcotest.(check (list (pair int string))) "contents" bindings (Btree.to_list t);
  check_inv t;
  Alcotest.(check bool) "well packed" true (Btree.leaf_utilization t > 0.85);
  (* still a live tree: insert and delete afterwards *)
  Btree.insert t 2 "two";
  Alcotest.(check bool) "insert after bulk load" true (Btree.mem t 2);
  Alcotest.(check bool) "delete after bulk load" true (Btree.delete t 4);
  check_inv t

let test_bulk_load_small () =
  let t = Btree.of_sorted ~capacity:4 [] in
  Alcotest.(check int) "empty" 0 (Btree.size t);
  check_inv t;
  let t = Btree.of_sorted ~capacity:4 [ (5, "x") ] in
  Alcotest.(check (option string)) "singleton" (Some "x") (Btree.search t 5);
  check_inv t

let test_compact_reclaims () =
  let t = Btree.create ~capacity:8 () in
  for i = 1 to 2000 do
    Btree.insert t i (string_of_int i)
  done;
  for i = 1 to 2000 do
    if i mod 4 <> 0 then ignore (Btree.delete t i)
  done;
  let before = Btree.leaf_utilization t in
  let t' = Btree.compact t in
  Alcotest.(check (list (pair int string))) "contents preserved"
    (Btree.to_list t) (Btree.to_list t');
  check_inv t';
  Alcotest.(check bool)
    (Fmt.str "utilization recovered (%.2f -> %.2f)" before
       (Btree.leaf_utilization t'))
    true
    (Btree.leaf_utilization t' > 2.0 *. before)

let prop_bulk_load_equals_inserts =
  QCheck.Test.make ~name:"bulk load = insert loop" ~count:100
    QCheck.(list (int_range 1 500))
    (fun keys ->
      let sorted =
        List.sort_uniq compare keys |> List.map (fun k -> (k, string_of_int k))
      in
      let bulk = Btree.of_sorted ~capacity:4 sorted in
      let incr = Btree.create ~capacity:4 () in
      List.iter (fun (k, v) -> Btree.insert incr k v) sorted;
      Btree.to_list bulk = Btree.to_list incr
      && Btree.check_invariants bulk = Ok ())

let test_reserved_key_rejected () =
  let t = Btree.create () in
  Alcotest.check_raises "sentinel rejected"
    (Invalid_argument "Btree.insert: reserved key") (fun () ->
      Btree.insert t Bound.min_sentinel "x")

let suite =
  [
    Alcotest.test_case "entries: basics" `Quick test_entries_basic;
    Alcotest.test_case "entries: add replaces" `Quick test_entries_add_replace;
    Alcotest.test_case "entries: remove" `Quick test_entries_remove;
    Alcotest.test_case "entries: split_half" `Quick test_entries_split_half;
    Alcotest.test_case "entries: partition_lt" `Quick test_entries_partition;
    Alcotest.test_case "entries: rejects unsorted" `Quick test_entries_rejects_unsorted;
    QCheck_alcotest.to_alcotest prop_entries_model;
    QCheck_alcotest.to_alcotest prop_entries_floor;
    Alcotest.test_case "bound: ordering" `Quick test_bound_order;
    Alcotest.test_case "node: leaf navigation" `Quick test_node_step_leaf;
    Alcotest.test_case "node: interior navigation" `Quick test_node_step_interior;
    Alcotest.test_case "node: half-split" `Quick test_node_half_split;
    Alcotest.test_case "node: content equality" `Quick test_node_content_equal;
    Alcotest.test_case "btree: basics" `Quick test_btree_basic;
    Alcotest.test_case "btree: growth and reachability" `Quick test_btree_grows;
    Alcotest.test_case "btree: never-merge deletes" `Quick test_btree_delete_never_merges;
    Alcotest.test_case "btree: range scan" `Quick test_btree_range;
    Alcotest.test_case "btree: upsert semantics" `Quick test_btree_update_in_place;
    QCheck_alcotest.to_alcotest prop_btree_vs_model;
    QCheck_alcotest.to_alcotest prop_btree_eq_bptree;
    Alcotest.test_case "bptree: restructure span" `Quick test_bptree_span_grows;
    Alcotest.test_case "btree: reserved key" `Quick test_reserved_key_rejected;
    Alcotest.test_case "btree: ordered queries" `Quick test_btree_ordered_queries;
    QCheck_alcotest.to_alcotest prop_btree_successor;
    Alcotest.test_case "btree: bulk load" `Quick test_bulk_load;
    Alcotest.test_case "btree: bulk load edge cases" `Quick test_bulk_load_small;
    Alcotest.test_case "btree: compaction reclaims space" `Quick
      test_compact_reclaims;
    QCheck_alcotest.to_alcotest prop_bulk_load_equals_inserts;
  ]
