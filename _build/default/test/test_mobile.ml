(* End-to-end tests of the single-copy mobile-nodes protocol (§4.2):
   migration, version-ordered link changes, forwarding addresses and
   their garbage collection, missing-node recovery, data balancing. *)
open Dbtree_core
open Dbtree_sim

let mk ?(procs = 4) ?(capacity = 4) ?(seed = 42) ?(key_space = 50_000)
    ?(forwarding = false) ?(balance_period = 0) () =
  Config.make ~procs ~capacity ~seed ~key_space ~forwarding ~balance_period ()

let run_mobile ?(count = 300) cfg label =
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  let keys, report =
    Scenario.run_cluster ~api:(Mobile.api t) ~cluster:cl ~cfg ~count ()
  in
  Scenario.check_verified label report;
  Scenario.check_no_leftover label cl;
  Scenario.all_search_results_correct cl keys;
  (t, keys, report)

let test_basic_load () = ignore (run_mobile (mk ()) "mobile basic")

let test_seeds () =
  List.iter
    (fun seed -> ignore (run_mobile (mk ~seed ()) (Fmt.str "mobile seed %d" seed)))
    [ 1; 5; 9; 1234 ]

let test_single_proc () =
  ignore (run_mobile ~count:150 (mk ~procs:1 ()) "mobile single proc")

let leaf_ids t pid =
  let store = Cluster.store (Mobile.cluster t) pid in
  let acc = ref [] in
  Store.iter store (fun c ->
      if Dbtree_blink.Node.is_leaf c.Store.node then
        acc := c.Store.node.Dbtree_blink.Node.id :: !acc);
  !acc

let test_explicit_migrations () =
  let cfg = mk () in
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  let keys, _ =
    Scenario.run_cluster ~api:(Mobile.api t) ~cluster:cl ~cfg ~count:300 ()
  in
  (* Move every leaf of processor 0 somewhere else, then search again. *)
  List.iteri
    (fun i id -> Mobile.migrate t ~node:id ~to_pid:(1 + (i mod 3)))
    (leaf_ids t 0);
  Mobile.run t;
  Alcotest.(check bool) "migrations happened" true (Mobile.migrations t > 0);
  Alcotest.(check int) "processor 0 drained of leaves" 0
    (List.length (leaf_ids t 0));
  Driver.run_closed cl (Mobile.api t)
    ~streams:(Scenario.search_streams ~keys ~procs:4 ~per_proc:50)
    ~window:4;
  let report = Verify.check cl in
  Scenario.check_verified "after migrations" report;
  Scenario.all_search_results_correct cl keys

let test_migration_roundtrip () =
  (* A leaf migrating away and back again must stay consistent. *)
  let cfg = mk () in
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  ignore (Mobile.insert t ~origin:0 10 "ten");
  Mobile.run t;
  let leaf = List.hd (leaf_ids t 0) in
  Mobile.migrate t ~node:leaf ~to_pid:2;
  Mobile.run t;
  Mobile.migrate t ~node:leaf ~to_pid:0;
  Mobile.run t;
  let s = Mobile.search t ~origin:3 10 in
  Mobile.run t;
  Alcotest.(check bool) "found after round trip" true
    ((Option.get (Opstate.find cl.Cluster.ops s)).Opstate.result
    = Some (Msg.Found "ten"));
  Scenario.check_verified "roundtrip" (Verify.check cl)

let test_migrate_noops () =
  let cfg = mk () in
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  ignore (Mobile.insert t ~origin:0 10 "ten");
  Mobile.run t;
  let before = Mobile.migrations t in
  (* migrating a nonexistent node and migrating in place are no-ops *)
  Mobile.migrate t ~node:99999 ~to_pid:1;
  let leaf = List.hd (leaf_ids t 0) in
  Mobile.migrate t ~node:leaf ~to_pid:0;
  Mobile.run t;
  Alcotest.(check int) "no-ops skipped" before (Mobile.migrations t);
  Alcotest.(check bool) "skips counted" true
    (Stats.get (Cluster.stats cl) "migrate.skipped" >= 2)

let test_forwarding_and_gc () =
  (* With forwarding on, stale messages chase tombstones; after GC the
     protocol must still deliver everything (forwarding is an optimization,
     not a correctness requirement — §4.2). *)
  let cfg = mk ~forwarding:true () in
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  let keys, _ =
    Scenario.run_cluster ~api:(Mobile.api t) ~cluster:cl ~cfg ~count:300 ()
  in
  List.iteri
    (fun i id -> Mobile.migrate t ~node:id ~to_pid:(1 + (i mod 3)))
    (leaf_ids t 0);
  Mobile.run t;
  Mobile.gc_forwarding t;
  Driver.run_closed cl (Mobile.api t)
    ~streams:(Scenario.search_streams ~keys ~procs:4 ~per_proc:50)
    ~window:4;
  let report = Verify.check cl in
  Scenario.check_verified "after gc" report;
  Scenario.all_search_results_correct cl keys

let test_balancer_reduces_imbalance () =
  (* A skewed load piles leaves on processor 0; the balancer spreads them. *)
  let skew_count = 400 in
  let load balance_period =
    let cfg = mk ~balance_period ~key_space:100_000 () in
    let t = Mobile.create cfg in
    let cl = Mobile.cluster t in
    let rng = Rng.create 5 in
    (* all keys within processor 0's slice *)
    let keys =
      Array.map (fun k -> k mod 20_000) (Dbtree_workload.Workload.unique_keys rng ~key_space:20_000 ~count:skew_count)
    in
    let keys = Array.to_list keys |> List.sort_uniq compare |> Array.of_list in
    let streams =
      Array.init 4 (fun pid ->
          Dbtree_workload.Workload.inserts
            ~keys:(Dbtree_workload.Workload.chunk keys ~parts:4).(pid))
    in
    Driver.run_closed cl (Mobile.api t) ~streams ~window:4;
    let counts = Mobile.leaf_counts t in
    let mx = Array.fold_left max 0 counts and mn = Array.fold_left min max_int counts in
    Scenario.check_verified "balancer" (Verify.check cl);
    (t, mx - mn)
  in
  let _, spread_off = load 0 in
  let t_on, spread_on = load 100 in
  Alcotest.(check bool)
    (Fmt.str "balancer reduced spread (%d -> %d)" spread_off spread_on)
    true
    (spread_on < spread_off);
  Alcotest.(check bool) "migrations occurred" true (Mobile.migrations t_on > 0)

let test_recovery_counted () =
  (* Migrations without forwarding force misnavigated messages through the
     recovery path. *)
  let cfg = mk ~forwarding:false ~balance_period:100 ~key_space:100_000 () in
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  let rng = Rng.create 5 in
  let keys = Dbtree_workload.Workload.unique_keys rng ~key_space:20_000 ~count:400 in
  let streams =
    Array.init 4 (fun pid ->
        Dbtree_workload.Workload.inserts
          ~keys:(Dbtree_workload.Workload.chunk keys ~parts:4).(pid))
  in
  Driver.run_closed cl (Mobile.api t) ~streams ~window:4;
  Driver.run_closed cl (Mobile.api t)
    ~streams:(Scenario.search_streams ~keys ~procs:4 ~per_proc:100)
    ~window:4;
  Scenario.check_verified "recovery" (Verify.check cl);
  Alcotest.(check bool) "recoveries happened and succeeded" true
    (Stats.get (Cluster.stats cl) "recover.count" > 0)

let test_link_change_ordering () =
  (* Repeated migrations of the same leaf generate competing link-changes;
     version numbers must keep every copy's ordered classes consistent
     (checked by the history audit) and stale changes absorbed. *)
  let cfg = mk () in
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  for i = 1 to 60 do
    ignore (Mobile.insert t ~origin:(i mod 4) (i * 50) (string_of_int i))
  done;
  Mobile.run t;
  for _round = 1 to 6 do
    List.iteri
      (fun i id ->
        if i mod 2 = 0 then Mobile.migrate t ~node:id ~to_pid:(Rng.int (Sim.rng cl.Cluster.sim) 4))
      (leaf_ids t 0 @ leaf_ids t 1)
  done;
  Mobile.run t;
  let report = Verify.check cl in
  Scenario.check_verified "link ordering" report;
  match report.Verify.history with
  | Some h -> Alcotest.(check bool) "ordered histories" true (Dbtree_history.Checker.ok h)
  | None -> Alcotest.fail "history recording expected"

let test_range_scan_after_migration () =
  let cfg = mk () in
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  for i = 1 to 300 do
    ignore (Mobile.insert t ~origin:(i mod 4) (i * 100) (Fmt.str "v%d" i))
  done;
  Mobile.run t;
  List.iteri
    (fun i id -> if i mod 2 = 0 then Mobile.migrate t ~node:id ~to_pid:(3 - (i mod 4)))
    (leaf_ids t 0 @ leaf_ids t 1);
  Mobile.run t;
  let cases = [ (150, 450); (5_000, 25_000); (0, 1_000_000) ] in
  let ops = List.map (fun (lo, hi) -> (Mobile.scan t ~origin:2 ~lo ~hi, lo, hi)) cases in
  Mobile.run t;
  List.iter (fun (op, lo, hi) -> Scenario.check_scan cl ~op ~lo ~hi) ops

let test_leaf_reclamation () =
  (* dE-tree extension: deleting a region's keys frees its leaves *)
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:50_000
      ~reclaim_empty_leaves:true ()
  in
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  for i = 1 to 400 do
    ignore (Mobile.insert t ~origin:(i mod 4) (i * 100) (string_of_int i))
  done;
  Mobile.run t;
  let nodes_before =
    Array.fold_left (fun acc s -> acc + Store.copy_count s) 0 cl.Cluster.stores
  in
  (* delete a contiguous band: its leaves empty and get absorbed *)
  for i = 100 to 300 do
    ignore (Mobile.remove t ~origin:(i mod 4) (i * 100))
  done;
  Mobile.run t;
  let nodes_after =
    Array.fold_left (fun acc s -> acc + Store.copy_count s) 0 cl.Cluster.stores
  in
  Alcotest.(check bool)
    (Fmt.str "leaves reclaimed (%d -> %d nodes)" nodes_before nodes_after)
    true (nodes_after < nodes_before);
  Alcotest.(check bool) "reclamations counted" true
    (Stats.get (Cluster.stats cl) "reclaim.count" > 10);
  Scenario.check_verified "reclaim" (Verify.check cl);
  (* survivors still reachable, deleted band absent, reinserts work *)
  let s1 = Mobile.search t ~origin:2 (50 * 100) in
  let s2 = Mobile.search t ~origin:1 (200 * 100) in
  ignore (Mobile.insert t ~origin:3 (200 * 100) "back");
  Mobile.run t;
  let s3 = Mobile.search t ~origin:0 (200 * 100) in
  Mobile.run t;
  let result op = (Option.get (Opstate.find cl.Cluster.ops op)).Opstate.result in
  Alcotest.(check bool) "survivor found" true (result s1 = Some (Msg.Found "50"));
  Alcotest.(check bool) "deleted absent" true (result s2 = Some Msg.Absent);
  Alcotest.(check bool) "reinsert into reclaimed range" true
    (result s3 = Some (Msg.Found "back"));
  Scenario.check_verified "reclaim+reinsert" (Verify.check cl)

let test_reclamation_with_migration () =
  (* reclamation and data balancing compose *)
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:50_000
      ~reclaim_empty_leaves:true ~balance_period:100 ()
  in
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  let rng = Rng.create 3 in
  let keys = Dbtree_workload.Workload.unique_keys rng ~key_space:12_000 ~count:400 in
  Array.iteri
    (fun i k -> ignore (Mobile.insert t ~origin:(i mod 4) k "v"))
    keys;
  Mobile.run t;
  Array.iteri
    (fun i k -> if i mod 2 = 0 then ignore (Mobile.remove t ~origin:(i mod 4) k))
    keys;
  Mobile.run t;
  Scenario.check_verified "reclaim under balancing" (Verify.check cl)

let prop_random_mobile_verifies =
  QCheck.Test.make ~name:"random mobile clusters verify" ~count:20
    QCheck.(
      quad (int_range 1 6) (int_range 2 8) (int_range 20 120) (int_bound 1000))
    (fun (procs, capacity, count, seed) ->
      (* clamp: qcheck shrinking can escape int_range bounds *)
      let procs = max 1 procs and capacity = max 2 capacity in
      let count = max 1 count and seed = abs seed in
      let cfg = mk ~procs ~capacity ~seed ~balance_period:97 () in
      let t = Mobile.create cfg in
      let cl = Mobile.cluster t in
      let _, report =
        Scenario.run_cluster ~api:(Mobile.api t) ~cluster:cl ~cfg ~count
          ~searches:8 ()
      in
      Verify.ok report)

let suite =
  [
    Alcotest.test_case "basic load" `Quick test_basic_load;
    Alcotest.test_case "seed sweep" `Slow test_seeds;
    Alcotest.test_case "single processor" `Quick test_single_proc;
    Alcotest.test_case "explicit migrations" `Quick test_explicit_migrations;
    Alcotest.test_case "migration round trip" `Quick test_migration_roundtrip;
    Alcotest.test_case "migration no-ops" `Quick test_migrate_noops;
    Alcotest.test_case "forwarding + GC" `Quick test_forwarding_and_gc;
    Alcotest.test_case "balancer reduces imbalance" `Slow
      test_balancer_reduces_imbalance;
    Alcotest.test_case "recovery path exercised" `Quick test_recovery_counted;
    Alcotest.test_case "link-change version ordering" `Quick
      test_link_change_ordering;
    Alcotest.test_case "range scan across migrated leaves" `Quick
      test_range_scan_after_migration;
    Alcotest.test_case "dE-tree: empty-leaf reclamation" `Quick
      test_leaf_reclamation;
    Alcotest.test_case "dE-tree: reclamation + balancing" `Quick
      test_reclamation_with_migration;
    QCheck_alcotest.to_alcotest prop_random_mobile_verifies;
  ]
