(* Tests for the lazy-update distributed hash table (the paper's §5
   future-work structure): correctness of both directory-maintenance
   modes, split-chain recovery, doubling, and the history audit. *)
open Dbtree_lht
open Dbtree_sim

let mk ?(procs = 4) ?(bucket_capacity = 4) ?(seed = 42) ?(lazy_directory = true)
    () =
  { Lht.default_config with procs; bucket_capacity; seed; lazy_directory }

let load t ~n ~seed =
  let rng = Rng.create seed in
  let keys = Array.init n (fun i -> (i * 2654435761) land 0xFFFFF) in
  Array.iteri
    (fun i k -> ignore (Lht.insert t ~origin:(i mod 4) k (Fmt.str "v%d" k)))
    keys;
  ignore rng;
  Lht.run t;
  keys

let check_verified label t =
  let r = Lht.verify t in
  if not (Lht.verified r) then
    Alcotest.failf "%s: %a" label Lht.pp_report r

let test_basic () =
  let t = Lht.create (mk ()) in
  let op1 = Lht.insert t ~origin:0 42 "answer" in
  Lht.run t;
  Alcotest.(check bool) "insert completed" true (Lht.result t op1 = Some Lht.Inserted);
  let op2 = Lht.search t ~origin:3 42 in
  let op3 = Lht.search t ~origin:2 43 in
  Lht.run t;
  Alcotest.(check bool) "found" true (Lht.result t op2 = Some (Lht.Found "answer"));
  Alcotest.(check bool) "absent" true (Lht.result t op3 = Some Lht.Absent);
  let op4 = Lht.remove t ~origin:1 42 in
  Lht.run t;
  Alcotest.(check bool) "removed" true (Lht.result t op4 = Some (Lht.Removed true));
  let op5 = Lht.remove t ~origin:1 42 in
  Lht.run t;
  Alcotest.(check bool) "remove absent" true
    (Lht.result t op5 = Some (Lht.Removed false));
  check_verified "basic" t

let test_growth_lazy () =
  let t = Lht.create (mk ()) in
  let keys = load t ~n:2000 ~seed:1 in
  Alcotest.(check bool) "split" true (Lht.splits t > 100);
  Alcotest.(check bool) "doubled" true (Lht.doublings t > 5);
  check_verified "growth" t;
  (* every key findable from every origin *)
  let ops =
    Array.to_list (Array.sub keys 0 200)
    |> List.mapi (fun i k -> (k, Lht.search t ~origin:(i mod 4) k))
  in
  Lht.run t;
  List.iter
    (fun (k, op) ->
      match Lht.result t op with
      | Some (Lht.Found _) -> ()
      | _ -> Alcotest.failf "key %d not found" k)
    ops

let test_growth_eager () =
  let t = Lht.create (mk ~lazy_directory:false ()) in
  ignore (load t ~n:2000 ~seed:1);
  check_verified "eager growth" t

let test_lazy_cheaper_than_eager () =
  let msgs lazy_directory =
    let t = Lht.create (mk ~lazy_directory ()) in
    ignore (load t ~n:1500 ~seed:3);
    check_verified "cost" t;
    Lht.messages t
  in
  let lazy_msgs = msgs true and eager_msgs = msgs false in
  Alcotest.(check bool)
    (Fmt.str "lazy cheaper (%d vs %d)" lazy_msgs eager_msgs)
    true (lazy_msgs < eager_msgs)

let test_upsert () =
  let t = Lht.create (mk ()) in
  ignore (Lht.insert t ~origin:0 7 "a");
  Lht.run t;
  ignore (Lht.insert t ~origin:2 7 "b");
  Lht.run t;
  let op = Lht.search t ~origin:1 7 in
  Lht.run t;
  Alcotest.(check bool) "overwritten" true (Lht.result t op = Some (Lht.Found "b"));
  check_verified "upsert" t

let test_single_proc () =
  let t = Lht.create (mk ~procs:1 ()) in
  for i = 1 to 300 do
    ignore (Lht.insert t ~origin:0 i (string_of_int i))
  done;
  Lht.run t;
  check_verified "single proc" t

let test_buckets_spread () =
  let t = Lht.create (mk ()) in
  ignore (load t ~n:2000 ~seed:5);
  let per = Lht.buckets_per_proc t in
  Alcotest.(check bool) "every processor owns buckets" true
    (Array.for_all (fun c -> c > 0) per)

let test_chain_recovery_counted () =
  (* with high latency, stale directories force split-chain chases *)
  let cfg =
    {
      (mk ()) with
      latency = { Dbtree_sim.Net.local_delay = 1; remote_base = 60; remote_jitter = 30 };
    }
  in
  let t = Lht.create cfg in
  ignore (load t ~n:1500 ~seed:7);
  check_verified "chain recovery" t;
  Alcotest.(check bool) "chases happened and succeeded" true
    (Stats.get (Lht.stats t) "op.chased" > 0)

let prop_random_lht_verifies =
  QCheck.Test.make ~name:"random hash tables verify" ~count:20
    QCheck.(
      quad (int_range 1 6) (int_range 2 8) (int_range 20 400) (int_bound 1000))
    (fun (procs, capacity, n, seed) ->
      let procs = max 1 procs and capacity = max 2 capacity in
      let n = max 1 n and seed = abs seed in
      let lazy_directory = seed mod 2 = 0 in
      let t =
        Lht.create (mk ~procs ~bucket_capacity:capacity ~seed ~lazy_directory ())
      in
      let rng = Rng.create (seed + 1) in
      for i = 1 to n do
        let k = Rng.int rng 100_000 in
        (match i mod 5 with
        | 0 -> ignore (Lht.remove t ~origin:(i mod procs) k)
        | 1 -> ignore (Lht.search t ~origin:(i mod procs) k)
        | _ -> ignore (Lht.insert t ~origin:(i mod procs) k (string_of_int k)));
        if i mod 50 = 0 then Lht.run t
      done;
      Lht.run t;
      Lht.verified (Lht.verify t))

let suite =
  [
    Alcotest.test_case "basic operations" `Quick test_basic;
    Alcotest.test_case "growth under load (lazy)" `Quick test_growth_lazy;
    Alcotest.test_case "growth under load (eager)" `Quick test_growth_eager;
    Alcotest.test_case "lazy directory cheaper than eager" `Quick
      test_lazy_cheaper_than_eager;
    Alcotest.test_case "upsert overwrites" `Quick test_upsert;
    Alcotest.test_case "single processor" `Quick test_single_proc;
    Alcotest.test_case "buckets spread across processors" `Quick
      test_buckets_spread;
    Alcotest.test_case "split-chain recovery" `Quick test_chain_recovery_counted;
    QCheck_alcotest.to_alcotest prop_random_lht_verifies;
  ]
