test/test_blink.ml: Alcotest Bound Bptree Btree Dbtree_blink Entries Fmt Int List Map Node Option QCheck QCheck_alcotest String
