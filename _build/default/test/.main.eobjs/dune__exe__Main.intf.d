test/main.mli:
