test/test_kv.ml: Alcotest Config Dbtree_core Fmt Int Kv List Map QCheck QCheck_alcotest Verify
