test/test_verify.ml: Alcotest Array Bound Cluster Config Dbtree_blink Dbtree_core Dbtree_sim Fixed Fmt List Node Opstate Option Store Verify
