test/test_sim.ml: Alcotest Array Dbtree_sim Fun Heap List Net Option QCheck QCheck_alcotest Rng Sim Stats Trace
