test/test_regressions.ml: Alcotest Array Cluster Config Dbtree_core Dbtree_lht Dbtree_sim Dbtree_workload Fixed Lht Mobile Rng Scenario Variable Verify
