test/main.ml: Alcotest Test_blink Test_fixed Test_history Test_kv Test_lht Test_misc Test_mobile Test_regressions Test_sim Test_variable Test_verify Test_workload
