test/test_misc.ml: Alcotest Bound Cluster Config Dbtree_blink Dbtree_core Dbtree_workload Driver Entries Fixed List Msg Node Opstate String
