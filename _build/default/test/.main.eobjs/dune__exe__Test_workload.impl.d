test/test_workload.ml: Alcotest Array Bound Dbtree_blink Dbtree_core Dbtree_sim Dbtree_workload List Partition QCheck QCheck_alcotest Rng Workload
