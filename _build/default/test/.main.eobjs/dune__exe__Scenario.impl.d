test/scenario.ml: Alcotest Array Cluster Config Dbtree_core Dbtree_sim Dbtree_workload Driver Hashtbl List Msg Opstate Option Rng Store Verify Workload
