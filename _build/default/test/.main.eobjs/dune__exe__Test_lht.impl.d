test/test_lht.ml: Alcotest Array Dbtree_lht Dbtree_sim Fmt Lht List QCheck QCheck_alcotest Rng Stats
