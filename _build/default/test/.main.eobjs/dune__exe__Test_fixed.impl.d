test/test_fixed.ml: Alcotest Array Astring Cluster Config Dbtree_core Dbtree_sim Dbtree_workload Debug Driver Fixed Fmt List Msg Opstate Option QCheck QCheck_alcotest Scenario Stats String Verify
