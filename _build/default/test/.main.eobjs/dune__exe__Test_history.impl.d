test/test_history.ml: Action Alcotest Checker Dbtree_history List Registry
