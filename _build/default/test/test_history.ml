(* Tests for the §3 correctness theory: action model, history registry,
   and the compatible / complete / ordered / exactly-once checkers. *)
open Dbtree_history

let insert_action ?(mode = Action.Initial) ~uid ~node key =
  { Action.uid; node; mode; kind = Action.Insert { key }; version = 0 }

let link_action ~uid ~node ~version target =
  {
    Action.uid;
    node;
    mode = Action.Initial;
    kind = Action.Link_change { which = `Right; target };
    version;
  }

let check r = Checker.check r

let violations_of req report =
  List.filter (fun v -> v.Checker.requirement = req) report.Checker.violations

let test_uniform () =
  let a = insert_action ~mode:Action.Relayed ~uid:3 ~node:1 42 in
  Alcotest.(check bool) "uniform erases mode" true
    ((Action.uniform a).Action.mode = Action.Initial)

let test_ordered_class () =
  Alcotest.(check (option string)) "inserts unordered" None
    (Action.ordered_class (insert_action ~uid:0 ~node:0 1));
  Alcotest.(check (option string)) "links ordered" (Some "link.right")
    (Action.ordered_class (link_action ~uid:0 ~node:0 ~version:1 9))

let two_copies () =
  let r = Registry.create () in
  Registry.new_copy r ~node:1 ~pid:0 ~base:Registry.Uid_set.empty;
  Registry.new_copy r ~node:1 ~pid:1 ~base:Registry.Uid_set.empty;
  r

let test_compatible_ok () =
  let r = two_copies () in
  let u = Registry.fresh_uid r in
  Registry.note_issued r u;
  Registry.record r ~node:1 ~pid:0 ~time:1 (insert_action ~uid:u ~node:1 5);
  Registry.record r ~node:1 ~pid:1 ~time:2
    (insert_action ~mode:Action.Relayed ~uid:u ~node:1 5);
  let report = check r in
  Alcotest.(check bool) "ok" true (Checker.ok report);
  Alcotest.(check int) "one node" 1 report.Checker.nodes_checked;
  Alcotest.(check int) "two copies" 2 report.Checker.copies_checked

let test_compatible_violation () =
  let r = two_copies () in
  let u = Registry.fresh_uid r in
  Registry.note_issued r u;
  Registry.record r ~node:1 ~pid:0 ~time:1 (insert_action ~uid:u ~node:1 5);
  (* pid 1 never sees the update *)
  let report = check r in
  Alcotest.(check int) "compatible violation" 1
    (List.length (violations_of `Compatible report))

let test_absorbed_counts () =
  (* An ineffective (absorbed) action still participates in the uniform
     history — the "rewriting" of the paper's proofs. *)
  let r = two_copies () in
  let u = Registry.fresh_uid r in
  Registry.record r ~node:1 ~pid:0 ~time:1 (insert_action ~uid:u ~node:1 5);
  Registry.record r ~node:1 ~pid:1 ~effective:false ~time:2
    (insert_action ~mode:Action.Relayed ~uid:u ~node:1 5);
  Alcotest.(check bool) "absorbed action keeps histories compatible" true
    (Checker.ok (check r))

let test_backwards_extension () =
  (* A copy created later carries the earlier updates in its base. *)
  let r = Registry.create () in
  Registry.new_copy r ~node:1 ~pid:0 ~base:Registry.Uid_set.empty;
  let u1 = Registry.fresh_uid r in
  Registry.record r ~node:1 ~pid:0 ~time:1 (insert_action ~uid:u1 ~node:1 5);
  let base = Registry.snapshot r ~node:1 ~pid:0 in
  Registry.new_copy r ~node:1 ~pid:1 ~base;
  let u2 = Registry.fresh_uid r in
  Registry.record r ~node:1 ~pid:1 ~time:2 (insert_action ~uid:u2 ~node:1 7);
  Registry.record r ~node:1 ~pid:0 ~time:3
    (insert_action ~mode:Action.Relayed ~uid:u2 ~node:1 7);
  Alcotest.(check bool) "backwards extension covers old updates" true
    (Checker.ok (check r))

let test_complete_violation () =
  let r = two_copies () in
  let u = Registry.fresh_uid r in
  Registry.note_issued r u;
  (* issued but never performed anywhere *)
  let report = check r in
  Alcotest.(check int) "complete violation" 1
    (List.length (violations_of `Complete report));
  (* note: the copies also miss it from M_n?  No — M_n is empty, so the
     copies are compatible; only completeness fails. *)
  Alcotest.(check int) "no compatible violation" 0
    (List.length (violations_of `Compatible report))

let test_ordered_violation () =
  let r = Registry.create () in
  Registry.new_copy r ~node:1 ~pid:0 ~base:Registry.Uid_set.empty;
  Registry.record r ~node:1 ~pid:0 ~time:1 (link_action ~uid:1 ~node:1 ~version:5 8);
  Registry.record r ~node:1 ~pid:0 ~time:2 (link_action ~uid:2 ~node:1 ~version:3 9);
  let report = check r in
  Alcotest.(check int) "ordered violation" 1
    (List.length (violations_of `Ordered report))

let test_ordered_absorbed_ok () =
  (* A stale link-change absorbed (ineffective) is fine: the history is
     rewritten to place it earlier. *)
  let r = Registry.create () in
  Registry.new_copy r ~node:1 ~pid:0 ~base:Registry.Uid_set.empty;
  Registry.record r ~node:1 ~pid:0 ~time:1 (link_action ~uid:1 ~node:1 ~version:5 8);
  Registry.record r ~node:1 ~pid:0 ~effective:false ~time:2
    (link_action ~uid:2 ~node:1 ~version:3 9);
  Alcotest.(check bool) "absorbed stale link ok" true (Checker.ok (check r))

let test_exactly_once_violation () =
  let r = Registry.create () in
  Registry.new_copy r ~node:1 ~pid:0 ~base:Registry.Uid_set.empty;
  Registry.record r ~node:1 ~pid:0 ~time:1 (insert_action ~uid:7 ~node:1 5);
  Registry.record r ~node:1 ~pid:0 ~time:2 (insert_action ~uid:7 ~node:1 5);
  let report = check r in
  Alcotest.(check int) "double apply detected" 1
    (List.length (violations_of `Exactly_once report))

let test_retired_copy_exempt () =
  let r = two_copies () in
  let u = Registry.fresh_uid r in
  Registry.record r ~node:1 ~pid:0 ~time:1 (insert_action ~uid:u ~node:1 5);
  (* pid 1 unjoined before seeing the update: exempt from compatibility *)
  Registry.retire_copy r ~node:1 ~pid:1;
  Alcotest.(check bool) "retired copies exempt" true (Checker.ok (check r))

let test_copies_of () =
  let r = two_copies () in
  Alcotest.(check int) "copies listed" 2 (List.length (Registry.copies_of r 1));
  Registry.retire_copy r ~node:1 ~pid:0;
  Alcotest.(check int) "live only" 1 (List.length (Registry.live_copies_of r 1));
  Alcotest.(check (list int)) "nodes" [ 1 ] (Registry.all_nodes r)

let suite =
  [
    Alcotest.test_case "action: uniform" `Quick test_uniform;
    Alcotest.test_case "action: ordered classes" `Quick test_ordered_class;
    Alcotest.test_case "checker: compatible histories pass" `Quick test_compatible_ok;
    Alcotest.test_case "checker: missing relay fails" `Quick test_compatible_violation;
    Alcotest.test_case "checker: absorbed actions count" `Quick test_absorbed_counts;
    Alcotest.test_case "checker: backwards extension" `Quick test_backwards_extension;
    Alcotest.test_case "checker: complete requirement" `Quick test_complete_violation;
    Alcotest.test_case "checker: ordered requirement" `Quick test_ordered_violation;
    Alcotest.test_case "checker: absorbed stale link ok" `Quick test_ordered_absorbed_ok;
    Alcotest.test_case "checker: exactly-once" `Quick test_exactly_once_violation;
    Alcotest.test_case "checker: retired copies exempt" `Quick test_retired_copy_exempt;
    Alcotest.test_case "registry: copy bookkeeping" `Quick test_copies_of;
  ]
