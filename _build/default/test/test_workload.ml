(* Tests for workload generation and the key-space partition. *)
open Dbtree_sim
open Dbtree_workload
open Dbtree_core

let test_unique_keys () =
  let rng = Rng.create 1 in
  let keys = Workload.unique_keys rng ~key_space:10_000 ~count:500 in
  Alcotest.(check int) "count" 500 (Array.length keys);
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  let distinct = Array.to_list sorted |> List.sort_uniq compare in
  Alcotest.(check int) "all distinct" 500 (List.length distinct);
  Array.iter
    (fun k ->
      Alcotest.(check bool) "in range" true (k >= 1 && k < 10_000))
    keys

let test_zipf_skew () =
  let rng = Rng.create 2 in
  let sample = Workload.zipf rng ~n:100 ~theta:0.99 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let r = sample () in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 much hotter than rank 50" true
    (counts.(0) > 5 * counts.(50));
  let uniform = Workload.zipf rng ~n:100 ~theta:0.0 in
  let counts0 = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let r = uniform () in
    counts0.(r) <- counts0.(r) + 1
  done;
  Alcotest.(check bool) "theta=0 roughly uniform" true
    (counts0.(0) < 3 * counts0.(50))

let test_streams () =
  let keys = [| 5; 6; 7 |] in
  let ops = Workload.take (Workload.inserts ~keys) 10 in
  Alcotest.(check int) "inserts bounded by keys" 3 (List.length ops);
  Alcotest.(check (list int)) "in order" [ 5; 6; 7 ]
    (List.map Workload.key_of ops);
  let rng = Rng.create 3 in
  let searches = Workload.take (Workload.searches rng ~keys ~count:20) 100 in
  Alcotest.(check int) "search count respected" 20 (List.length searches);
  List.iter
    (fun op ->
      match op with
      | Workload.Search k ->
        Alcotest.(check bool) "searched key known" true (Array.mem k keys)
      | _ -> Alcotest.fail "expected search")
    searches

let test_mixed_stream () =
  let rng = Rng.create 4 in
  let loaded = [| 1; 2; 3 |] and fresh = [| 10; 11 |] in
  let ops =
    Workload.take (Workload.mixed rng ~loaded ~fresh ~search_ratio:0.5 ~count:50) 100
  in
  Alcotest.(check int) "count respected" 50 (List.length ops);
  let inserts =
    List.filter (function Workload.Insert _ -> true | _ -> false) ops
  in
  Alcotest.(check int) "both fresh keys inserted once" 2 (List.length inserts)

let test_chunk () =
  let parts = Workload.chunk [| 1; 2; 3; 4; 5 |] ~parts:3 in
  Alcotest.(check int) "parts" 3 (Array.length parts);
  Alcotest.(check (list int)) "reassembles"
    [ 1; 2; 3; 4; 5 ]
    (Array.to_list parts |> List.concat_map Array.to_list);
  let empty_ok = Workload.chunk [| 1 |] ~parts:4 in
  Alcotest.(check int) "more parts than elements" 4 (Array.length empty_ok)

let test_partition () =
  let p = Partition.create ~procs:4 ~key_space:1000 in
  Alcotest.(check int) "owner of 0" 0 (Partition.owner p 0);
  Alcotest.(check int) "owner of 999" 3 (Partition.owner p 999);
  Alcotest.(check int) "clamp below" 0 (Partition.owner p (-5));
  Alcotest.(check int) "clamp above" 3 (Partition.owner p 123456);
  (* slices tile the key space *)
  let covered = ref 0 in
  for proc = 0 to 3 do
    let lo, hi = Partition.slice p proc in
    covered := !covered + (hi - lo);
    for k = lo to hi - 1 do
      if k mod 97 = 0 then
        Alcotest.(check int) "slice owner" proc (Partition.owner p k)
    done
  done;
  Alcotest.(check int) "slices tile key space" 1000 !covered;
  let open Dbtree_blink in
  Alcotest.(check (list int)) "full range -> everyone" [ 0; 1; 2; 3 ]
    (Partition.members_of_range p ~low:Bound.Neg_inf ~high:Bound.Pos_inf);
  Alcotest.(check (list int)) "one slice -> one proc" [ 1 ]
    (Partition.members_of_range p ~low:(Bound.Key 300) ~high:(Bound.Key 400));
  Alcotest.(check (list int)) "straddling -> both" [ 1; 2 ]
    (Partition.members_of_range p ~low:(Bound.Key 400) ~high:(Bound.Key 600))

let prop_members_contiguous =
  QCheck.Test.make ~name:"partition members form a contiguous interval"
    ~count:200
    QCheck.(pair (int_range 0 999) (int_range 1 999))
    (fun (lo, len) ->
      let open Dbtree_blink in
      let p = Partition.create ~procs:7 ~key_space:1000 in
      let hi = min 1000 (lo + len) in
      let members =
        Partition.members_of_range p ~low:(Bound.Key lo) ~high:(Bound.Key hi)
      in
      members <> []
      && List.for_all2
           (fun a b -> b = a + 1)
           (List.filteri (fun i _ -> i < List.length members - 1) members)
           (List.tl members))

let suite =
  [
    Alcotest.test_case "unique keys" `Quick test_unique_keys;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "streams" `Quick test_streams;
    Alcotest.test_case "mixed stream" `Quick test_mixed_stream;
    Alcotest.test_case "chunk" `Quick test_chunk;
    Alcotest.test_case "partition" `Quick test_partition;
    QCheck_alcotest.to_alcotest prop_members_contiguous;
  ]
