(* Lazy updates beyond trees: the distributed extendible hash table (§5).

     dune exec examples/hash_directory.exe

   The paper's closing section promises to apply lazy updates "to other
   distributed data structures, such as hash tables".  Here the hash
   directory is replicated on every processor like the dB-tree's root;
   buckets are single-copy like leaves.  A bucket split re-points part of
   the directory — a lazy update relayed without synchronization, ordered
   only by pointer specificity — and directory doubling (the one
   non-commuting action) is serialized through a primary copy. *)
open Dbtree_lht

let () =
  let cfg = { Lht.default_config with procs = 4; bucket_capacity = 8 } in
  let t = Lht.create cfg in

  (* Fill: session tokens keyed by user id. *)
  for user = 1 to 5_000 do
    ignore (Lht.insert t ~origin:(user mod 4) user (Fmt.str "session-%d" user))
  done;
  Lht.run t;
  Fmt.pr "after 5000 inserts: depth=%d, %d buckets (%a per processor)@."
    (Lht.depth t 0) (Lht.bucket_count t)
    Fmt.(Dump.array int)
    (Lht.buckets_per_proc t);
  Fmt.pr "bucket splits: %d   directory doublings: %d@." (Lht.splits t)
    (Lht.doublings t);

  (* Lookups from every processor — each resolves the bucket through its
     own directory copy. *)
  let op = Lht.search t ~origin:3 4242 in
  Lht.run t;
  (match Lht.result t op with
  | Some (Lht.Found v) -> Fmt.pr "user 4242 -> %s@." v
  | _ -> assert false);

  (* Sessions expire. *)
  for user = 1 to 5_000 do
    if user mod 3 = 0 then ignore (Lht.remove t ~origin:(user mod 4) user)
  done;
  Lht.run t;

  let report = Lht.verify t in
  Fmt.pr "@.final audit: %a@." Lht.pp_report report;
  Fmt.pr "verified: %b   messages: %d@."
    (Lht.verified report) (Lht.messages t)
