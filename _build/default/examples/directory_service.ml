(* A distributed directory service on the variable-copies dB-tree (§4.3).

     dune exec examples/directory_service.exe

   The motivating workload of the paper's introduction: a very large
   dictionary served by many processors.  Account records live in leaves
   spread across the cluster; the replicated index lets every processor
   answer lookups starting locally.  When the tenant distribution shifts,
   leaves migrate and processors join/unjoin the replication of interior
   nodes — the path-replication invariant maintains itself while the
   service keeps running. *)
open Dbtree_core
open Dbtree_sim

let () =
  let procs = 8 in
  let cfg =
    Config.make ~procs ~capacity:16 ~key_space:1_000_000 ~balance_period:300 ()
  in
  let t = Variable.create cfg in
  let cl = Variable.cluster t in
  let rng = Rng.create 2 in

  (* Provision 5000 accounts with ids clustered by region (region = id
     prefix), arriving at whichever frontend (processor) the request
     hits. *)
  let accounts =
    Dbtree_workload.Workload.unique_keys rng ~key_space:1_000_000 ~count:5_000
  in
  Array.iter
    (fun id ->
      ignore
        (Variable.insert t ~origin:(Rng.int rng procs) id
           (Fmt.str "account:%d:region-%d" id (id / 125_000))))
    accounts;
  Variable.run t;
  Fmt.pr "provisioned %d accounts across %d processors@." (Array.length accounts)
    procs;
  Fmt.pr "leaves per processor: %a@."
    Fmt.(Dump.array int)
    (Variable.leaf_counts t);

  (* Lookup storm from every frontend. *)
  let hits = ref 0 in
  for _ = 1 to 2_000 do
    ignore (Variable.search t ~origin:(Rng.int rng procs) (Rng.pick rng accounts))
  done;
  Variable.run t;
  Opstate.iter cl.Cluster.ops (fun r ->
      match (r.Opstate.kind, r.Opstate.result) with
      | Opstate.Search, Some (Msg.Found _) -> incr hits
      | _ -> ());
  Fmt.pr "lookup storm: %d/2000 hits@." !hits;

  (* A region is decommissioned: drain processor 7's leaves onto the rest
     of the cluster.  Receivers join the replications they now need;
     processor 7 unjoins the ones it no longer does. *)
  let drained = ref 0 in
  let store = Cluster.store cl 7 in
  Store.iter store (fun c ->
      if Dbtree_blink.Node.is_leaf c.Store.node then begin
        Variable.migrate t ~node:c.Store.node.Dbtree_blink.Node.id
          ~to_pid:(!drained mod 7);
        incr drained
      end);
  Variable.run t;
  Fmt.pr "@.drained %d leaves off processor 7 (joins: %d, unjoins: %d)@."
    !drained (Variable.joins t) (Variable.unjoins t);
  Fmt.pr "leaves per processor: %a@."
    Fmt.(Dump.array int)
    (Variable.leaf_counts t);

  (* The service still answers, from every frontend, including 7. *)
  for origin = 0 to procs - 1 do
    for _ = 1 to 100 do
      ignore (Variable.search t ~origin (Rng.pick rng accounts))
    done
  done;
  Variable.run t;
  let report = Verify.check cl in
  Fmt.pr "@.final audit: %a@." Verify.pp report;
  Fmt.pr "verified: %b@." (Verify.ok report)
