(* Leaf-level data balancing with mobile nodes (§4.2, [14]).

     dune exec examples/data_balancing.exe

   A time-ordered ingest (think: log records keyed by timestamp) lands
   entirely in one processor's key range.  Without balancing, that
   processor ends up owning nearly every leaf.  With the lazy migration
   protocol, leaves move to idle processors while the load is running —
   misdirected messages recover through forwarding addresses and B-link
   re-routing, and version-numbered link-changes keep the structure
   sound. *)
open Dbtree_core

let ingest t procs n =
  (* sequential keys: the classic hot-spot workload *)
  for i = 1 to n do
    ignore (Mobile.insert t ~origin:(i mod procs) (i * 7) (Fmt.str "log-%d" i))
  done;
  Mobile.run t

let show label t =
  Fmt.pr "%-28s leaves per processor: %a   (migrations so far: %d)@." label
    Fmt.(Dump.array int)
    (Mobile.leaf_counts t) (Mobile.migrations t)

let () =
  let procs = 4 in
  Fmt.pr "--- without balancing ---@.";
  let cfg = Config.make ~procs ~capacity:8 ~key_space:100_000 () in
  let t = Mobile.create cfg in
  ingest t procs 2_000;
  show "after skewed ingest:" t;

  Fmt.pr "@.--- with the lazy balancer (period 150, forwarding on) ---@.";
  let cfg =
    Config.make ~procs ~capacity:8 ~key_space:100_000 ~balance_period:150
      ~forwarding:true ()
  in
  let t = Mobile.create cfg in
  ingest t procs 2_000;
  show "after skewed ingest:" t;

  (* forwarding addresses are garbage-collectable at any time (§4.2) *)
  Mobile.gc_forwarding t;

  (* the structure still answers correctly from every processor *)
  let cl = Mobile.cluster t in
  let misses = ref 0 in
  for origin = 0 to procs - 1 do
    for i = 1 to 50 do
      ignore (Mobile.search t ~origin ((i * 131 mod 2000) * 7 + 7))
    done
  done;
  Mobile.run t;
  Opstate.iter cl.Cluster.ops (fun r ->
      match (r.Opstate.kind, r.Opstate.result) with
      | Opstate.Search, Some Msg.Absent -> incr misses
      | _ -> ());
  Fmt.pr "@.search probes from all processors after GC: %d misses@." !misses;
  let report = Verify.check cl in
  Fmt.pr "verified: %b  (recoveries used: %d)@." (Verify.ok report)
    (Dbtree_sim.Stats.get (Cluster.stats cl) "recover.count")
