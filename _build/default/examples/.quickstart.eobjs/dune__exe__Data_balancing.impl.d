examples/data_balancing.ml: Cluster Config Dbtree_core Dbtree_sim Dump Fmt Mobile Msg Opstate Verify
