examples/hash_directory.mli:
