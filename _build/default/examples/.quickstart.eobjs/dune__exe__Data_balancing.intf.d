examples/data_balancing.mli:
