examples/quickstart.ml: Cluster Config Dbtree_core Dbtree_sim Fixed Fmt List Msg Opstate Option Verify
