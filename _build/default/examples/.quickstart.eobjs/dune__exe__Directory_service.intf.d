examples/directory_service.mli:
