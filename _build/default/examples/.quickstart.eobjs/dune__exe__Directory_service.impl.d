examples/directory_service.ml: Array Cluster Config Dbtree_blink Dbtree_core Dbtree_sim Dbtree_workload Dump Fmt Msg Opstate Rng Store Variable Verify
