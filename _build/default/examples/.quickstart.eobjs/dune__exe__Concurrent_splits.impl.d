examples/concurrent_splits.ml: Cluster Config Dbtree_core Dbtree_history Dbtree_sim Dbtree_workload Driver Fixed Fmt List Verify Workload
