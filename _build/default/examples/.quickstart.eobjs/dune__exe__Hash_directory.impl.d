examples/hash_directory.ml: Dbtree_lht Dump Fmt Lht
