examples/quickstart.mli:
