examples/concurrent_splits.mli:
