(* Quickstart: a 4-processor dB-tree with lazy (semi-synchronous) replica
   maintenance.

     dune exec examples/quickstart.exe

   Operations are asynchronous: issuing returns an operation id, and
   [run] drains the simulated cluster to quiescence.  At the end we audit
   the whole cluster against the paper's correctness criteria. *)
open Dbtree_core

let () =
  (* 4 processors; nodes split beyond 8 entries; path replication: the
     root lives everywhere, each leaf on one processor. *)
  let cfg = Config.make ~procs:4 ~capacity:8 ~key_space:100_000 () in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in

  (* Insert a thousand keys, each issued at a random processor. *)
  let rng = Dbtree_sim.Rng.create 1 in
  for i = 1 to 1000 do
    let key = 1 + Dbtree_sim.Rng.int rng 99_999 in
    ignore (Fixed.insert t ~origin:(i mod 4) key (Fmt.str "value-%d" key))
  done;
  Fixed.run t;

  (* Point lookups from every processor. *)
  let probe = Fixed.search t ~origin:2 50_000 in
  Fixed.run t;
  (match (Option.get (Opstate.find cl.Cluster.ops probe)).Opstate.result with
  | Some (Msg.Found v) -> Fmt.pr "key 50000 -> %s@." v
  | Some Msg.Absent -> Fmt.pr "key 50000 is absent@."
  | Some (Msg.Inserted | Msg.Removed _ | Msg.Bindings _) | None -> assert false);

  (* Remove something and check it is gone. *)
  ignore (Fixed.remove t ~origin:0 50_000);
  Fixed.run t;
  let probe = Fixed.search t ~origin:3 50_000 in
  Fixed.run t;
  (match (Option.get (Opstate.find cl.Cluster.ops probe)).Opstate.result with
  | Some Msg.Absent -> Fmt.pr "key 50000 removed@."
  | _ -> assert false);

  (* Range scan along the distributed leaf chain. *)
  let probe = Fixed.scan t ~origin:1 ~lo:10_000 ~hi:12_000 in
  Fixed.run t;
  (match (Option.get (Opstate.find cl.Cluster.ops probe)).Opstate.result with
  | Some (Msg.Bindings bs) ->
    Fmt.pr "scan [10000,12000]: %d bindings@." (List.length bs)
  | _ -> assert false);

  (* Audit: single-copy equivalence, key completeness, reachability, and
     the paper's Sec.3 history requirements. *)
  let report = Verify.check cl in
  Fmt.pr "@.%a@." Verify.pp report;
  Fmt.pr "@.cluster: %d ops completed, %d half-splits, %d remote messages@."
    (Opstate.completed cl.Cluster.ops)
    (Fixed.splits t)
    (Cluster.Network.remote_messages cl.Cluster.net);
  Fmt.pr "verified: %b@." (Verify.ok report)
