(* dbtree — command-line driver for the experiments and ad-hoc runs. *)
open Cmdliner

let quick_arg =
  let doc = "Run with reduced workload sizes (fast smoke pass)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

(* ------------------------------ list ------------------------------ *)

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun e ->
        Fmt.pr "%-4s %s@." e.Dbtree_experiments.Experiments.id
          e.Dbtree_experiments.Experiments.title)
      Dbtree_experiments.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ------------------------------ run ------------------------------- *)

let run_cmd =
  let doc = "Run one experiment by id (e1 .. e12)." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id.")
  in
  let run quick id =
    match Dbtree_experiments.Experiments.find (String.lowercase_ascii id) with
    | Some e ->
      e.Dbtree_experiments.Experiments.run ~quick ();
      `Ok ()
    | None ->
      `Error (false, Fmt.str "unknown experiment %S; try `dbtree list'" id)
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run $ quick_arg $ id_arg))

(* ------------------------------ all ------------------------------- *)

let all_cmd =
  let doc = "Run every experiment in order." in
  let run quick = Dbtree_experiments.Experiments.run_all ~quick () in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ quick_arg)

(* ------------------------------ demo ------------------------------ *)

let demo_cmd =
  let doc =
    "Ad-hoc cluster run: load keys into a dB-tree and print the verifier \
     report and statistics."
  in
  let procs_arg =
    Arg.(value & opt int 4 & info [ "procs"; "p" ] ~doc:"Processors.")
  in
  let count_arg =
    Arg.(value & opt int 1000 & info [ "keys"; "n" ] ~doc:"Keys to insert.")
  in
  let capacity_arg =
    Arg.(value & opt int 8 & info [ "capacity"; "c" ] ~doc:"Node capacity.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let dump_arg =
    Arg.(value & flag & info [ "dump" ] ~doc:"Print the distributed tree afterwards.")
  in
  let protocol_arg =
    let protocol_conv =
      Arg.enum
        [
          ("semi", `Semi); ("sync", `Sync); ("eager", `Eager);
          ("naive", `Naive); ("mobile", `Mobile); ("variable", `Variable);
        ]
    in
    Arg.(
      value
      & opt protocol_conv `Semi
      & info [ "protocol" ]
          ~doc:"Protocol: semi, sync, eager, naive, mobile, variable.")
  in
  let run procs count capacity seed protocol dump =
    let open Dbtree_core in
    let open Dbtree_experiments in
    let mk ?(discipline = Config.Semi) ?(balance_period = 0) () =
      Config.make ~procs ~capacity ~seed ~key_space:(max 100_000 (count * 20))
        ~discipline ~balance_period ()
    in
    let r =
      match protocol with
      | `Semi -> Common.run_fixed ~count (mk ())
      | `Sync -> Common.run_fixed ~count (mk ~discipline:Config.Sync ())
      | `Eager -> Common.run_fixed ~count (mk ~discipline:Config.Eager ())
      | `Naive ->
        Common.run_fixed ~count
          (Config.make ~procs ~capacity ~seed
             ~key_space:(max 100_000 (count * 20))
             ~discipline:Config.Naive ~replication:Config.All_procs ())
      | `Mobile -> snd (Common.run_mobile ~count (mk ~balance_period:200 ()))
      | `Variable -> snd (Common.run_variable ~count (mk ~balance_period:200 ()))
    in
    Fmt.pr "%a@." Verify.pp r.Common.report;
    Fmt.pr "ops completed: %d in %d ticks (%.2f ops/ktick)@."
      (Common.ops_completed r) r.Common.elapsed (Common.throughput r);
    Fmt.pr "splits: %d   remote messages: %d   bytes: %d@." r.Common.splits
      (Common.msgs r)
      (Cluster.Network.bytes_sent r.Common.cluster.Cluster.net);
    Fmt.pr "verified: %s@." (Common.verified r);
    if dump then Fmt.pr "@.%a" Debug.pp_cluster r.Common.cluster
  in
  Cmd.v (Cmd.info "demo" ~doc)
    Term.(
      const run $ procs_arg $ count_arg $ capacity_arg $ seed_arg
      $ protocol_arg $ dump_arg)

let main =
  let doc = "Lazy updates for distributed search structures (dB-tree)" in
  Cmd.group
    (Cmd.info "dbtree" ~version:"1.0.0" ~doc)
    [ list_cmd; run_cmd; all_cmd; demo_cmd ]

let () = exit (Cmd.eval main)
