(* The Figure 3 scenario, narrated.

     dune exec examples/concurrent_splits.exe

   Two processors each hold a copy of the parent node.  Leaves A and B
   (on different processors) split "at about the same time": a pointer to
   A' is inserted into one copy of the parent and a pointer to B' into the
   other.  The copies are transiently unequal — yet no operation blocks,
   and the copies converge without any synchronization, because the two
   inserts commute (they are lazy updates). *)
open Dbtree_core
open Dbtree_workload

let () =
  let cfg =
    Config.make ~procs:2 ~capacity:4 ~key_space:1000
      ~discipline:Config.Semi ~replication:Config.All_procs ~trace:true ()
  in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in

  Fmt.pr "Filling leaf A (keys 10..50) from processor 0 and leaf B@.";
  Fmt.pr "(keys 510..550) from processor 1, all at simulated time 0...@.@.";
  let inserts keys =
    Workload.of_list
      (List.map (fun k -> Workload.Insert (k, Workload.value_for k)) keys)
  in
  Driver.run_all cl (Driver.fixed_api t)
    ~streams:[| inserts [ 10; 20; 30; 40; 50 ]; inserts [ 510; 520; 530; 540; 550 ] |];

  Fmt.pr "Protocol trace:@.%a@." Dbtree_obs.Obs.pp cl.Cluster.obs;

  let stats = Cluster.stats cl in
  Fmt.pr "half-splits: %d@." (Fixed.splits t);
  Fmt.pr "AAS synchronization messages: %d (lazy updates need none)@."
    (Dbtree_sim.Stats.get stats "net.msg.split_start"
    + Dbtree_sim.Stats.get stats "net.msg.split_ack"
    + Dbtree_sim.Stats.get stats "net.msg.split_end");
  Fmt.pr "relayed updates applied: %d@."
    (Dbtree_sim.Stats.get stats "relay.applied");

  let report = Verify.check cl in
  Fmt.pr "@.parent copies converged: %b@." (report.Verify.divergent_nodes = []);
  Fmt.pr "every key reachable from both processors: %b@."
    (report.Verify.unreachable = [] && report.Verify.missing_keys = []);
  Fmt.pr "Sec.3 history requirements: %s@."
    (match report.Verify.history with
    | Some h when Dbtree_history.Checker.ok h -> "satisfied"
    | Some _ -> "VIOLATED"
    | None -> "not recorded")
